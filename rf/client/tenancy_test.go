package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/rf/api"
)

// TestAPIKeySentAndTyped401 pins the auth contract: WithAPIKey stamps
// every request with the key header, a 401 surfaces the server's
// machine-readable code, and authentication failures are terminal (a
// retry would just fail the same way).
func TestAPIKeySentAndTyped401(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.Header.Get(api.KeyHeader) != "key-good" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnauthorized)
			fmt.Fprintln(w, `{"error": "unknown API key", "code": "unauthenticated"}`)
			return
		}
		fmt.Fprintln(w, `{"id": "s000001", "state": "done"}`)
	}))
	defer ts.Close()

	st, err := New(ts.URL, WithAPIKey("key-good")).Status(context.Background(), "s000001")
	if err != nil {
		t.Fatalf("keyed Status: %v", err)
	}
	if st.State != "done" {
		t.Errorf("keyed Status state = %q, want done", st.State)
	}

	calls.Store(0)
	_, err = New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond)).Status(context.Background(), "s000001")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("keyless Status error = %v (%T), want *APIError", err, err)
	}
	if ae.StatusCode != http.StatusUnauthorized || ae.Code != api.ErrCodeUnauthenticated {
		t.Errorf("keyless Status = %d/%q, want 401/%q", ae.StatusCode, ae.Code, api.ErrCodeUnauthenticated)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("401 was attempted %d times, want 1 (not transient)", n)
	}
}

// TestStatusRetries429HonoringRetryAfter: a rate-limited idempotent
// request is retried, and the server's retry_after_ms hint raises the
// delay above the client's own (tiny) backoff.
func TestStatusRetries429HonoringRetryAfter(t *testing.T) {
	const hint = 50 * time.Millisecond
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error": "rate limit exceeded", "code": "rate_limited", "retry_after_ms": %d}`, hint.Milliseconds())
			return
		}
		fmt.Fprintln(w, `{"id": "s000001", "state": "done"}`)
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(3), WithBackoff(time.Microsecond))
	start := time.Now()
	st, err := cl.Status(context.Background(), "s000001")
	if err != nil {
		t.Fatalf("Status after 429s: %v", err)
	}
	if st.State != "done" {
		t.Errorf("state = %q, want done", st.State)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (2 × 429, then success)", n)
	}
	if elapsed := time.Since(start); elapsed < 2*hint {
		t.Errorf("retries took %v, want >= %v (Retry-After hint ignored?)", elapsed, 2*hint)
	}
}

// TestSubmitNotRetriedOn429: Submit is intentionally non-idempotent —
// a 429 is surfaced once, with the Retry-After header (whole seconds)
// parsed when the body carries no millisecond hint.
func TestSubmitNotRetriedOn429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error": "tenant over quota", "code": "over_quota"}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond)).Submit(context.Background(), testSpec(t))
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("Submit error = %v (%T), want *APIError", err, err)
	}
	if ae.Code != api.ErrCodeOverQuota {
		t.Errorf("Code = %q, want %q", ae.Code, api.ErrCodeOverQuota)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s (from header)", ae.RetryAfter)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("Submit was attempted %d times, want 1", n)
	}
}
