package client_test

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/rf"
	"repro/rf/client"
)

// Example_submitAndStream submits a sweep to an rfserved instance and
// streams its NDJSON result rows as they complete. The stream survives
// mid-stream disconnects (the client falls back to status polling and
// resumes), and the bytes are identical to a local `rfbatch -ndjson`
// run of the same spec. There is no Output comment because the example
// needs a live server; it is compiled, not executed, by `go test`.
func Example_submitAndStream() {
	ctx := context.Background()
	cl := client.New("http://localhost:8090",
		client.WithAPIKey(os.Getenv("RF_API_KEY"))) // optional; multi-tenant servers only

	spec, err := rf.ParseSpec(strings.NewReader(`{
	  "schema": 1,
	  "instructions": 60000,
	  "benchmarks": ["compress", "swim"],
	  "architectures": [{"kind": "rfcache", "caching": ["nonbypass", "ready"]}]
	}`))
	if err != nil {
		panic(err)
	}

	ack, err := cl.Submit(ctx, spec)
	if err != nil {
		panic(err)
	}
	if err := cl.StreamResults(ctx, ack.ID, os.Stdout); err != nil {
		panic(err)
	}

	// The status document says whether the sweep verifiably finished —
	// a truncated stream is otherwise indistinguishable from success.
	st, err := cl.Status(ctx, ack.ID)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %s (%d cached, %d simulated)\n",
		ack.ID, st.State, st.Cached, st.Simulated)
}
