package rf

import "repro/internal/sim"

// DefaultInstructions is the instruction budget NewConfig applies when
// MaxInstructions is not given — the same default a sweep spec uses.
const DefaultInstructions = 120000

// configState threads option application so derived defaults (warmup)
// can be recomputed after explicit overrides.
type configState struct {
	cfg       Config
	warmupSet bool
}

// Option adjusts a configuration under construction; see NewConfig.
type Option func(*configState)

// NewConfig returns the paper's Table 1 processor configured for the
// given register file architecture, with the options applied:
//
//	cfg := rf.NewConfig(rf.PaperCache(), rf.MaxInstructions(100000))
//
// Unless Warmup is given, the warmup window is a quarter of the
// instruction budget, mirroring the paper's skip of each benchmark's
// initialization. Validate the result with cfg.Validate().
func NewConfig(spec RFSpec, opts ...Option) Config {
	st := configState{cfg: sim.DefaultConfig(spec, DefaultInstructions)}
	for _, o := range opts {
		o(&st)
	}
	if !st.warmupSet {
		st.cfg.WarmupInstructions = st.cfg.MaxInstructions / 4
	}
	return st.cfg
}

// MaxInstructions sets the committed-instruction budget of the run.
func MaxInstructions(n uint64) Option {
	return func(st *configState) { st.cfg.MaxInstructions = n }
}

// Warmup sets the number of initial commits excluded from all
// statistics (caches, predictor and register file state keep warming
// during them).
func Warmup(n uint64) Option {
	return func(st *configState) {
		st.cfg.WarmupInstructions = n
		st.warmupSet = true
	}
}

// PhysRegs sets the per-file physical register count (the paper uses
// 128 int + 128 FP).
func PhysRegs(n int) Option {
	return func(st *configState) { st.cfg.PhysRegs = n }
}

// WindowSize sets the instruction window / reorder buffer size.
func WindowSize(n int) Option {
	return func(st *configState) { st.cfg.WindowSize = n }
}

// LSQSize sets the load/store queue capacity.
func LSQSize(n int) Option {
	return func(st *configState) { st.cfg.LSQSize = n }
}

// Widths sets the per-cycle fetch, issue and commit limits.
func Widths(fetch, issue, commit int) Option {
	return func(st *configState) {
		st.cfg.FetchWidth, st.cfg.IssueWidth, st.cfg.CommitWidth = fetch, issue, commit
	}
}

// Predictor sizes the gshare branch predictor: table index bits and
// global history length.
func Predictor(tableBits, historyBits uint) Option {
	return func(st *configState) {
		st.cfg.PredictorBits, st.cfg.HistoryBits = tableBits, historyBits
	}
}

// ValueStats enables the live-value instrumentation (Figure 3);
// measurably slower.
func ValueStats() Option {
	return func(st *configState) { st.cfg.ValueStats = true }
}
