// Package repro is a from-scratch Go reproduction of "Multiple-Banked
// Register File Architectures" (Cruz, González, Valero, Topham; ISCA 2000).
//
// The library lives under internal/:
//
//   - internal/core — the paper's contribution: the register file cache
//     (two-level multi-banked register file with caching and prefetching
//     policies) plus the single-banked baselines and a one-level
//     multi-banked extension;
//   - internal/sim — the cycle-level 8-way out-of-order processor
//     (Table 1 of the paper) that evaluates them;
//   - internal/sweep — the experiment orchestration engine: bounded
//     worker pool, pluggable content-addressed result cache, sweep-matrix
//     specs;
//   - internal/store — the disk-backed result store behind rfbatch
//     -store and rfserved (atomic writes, LRU eviction, corruption
//     tolerance);
//   - internal/server — the rfserved HTTP sweep service;
//   - internal/dispatch — coordinator/worker distribution of sweep jobs
//     across an rfserved fleet (lease-based pull protocol, failover
//     requeue, fleet-wide dedup by content address);
//   - internal/trace — synthetic SPEC95-proxy workloads;
//   - internal/area — the area/access-time cost model calibrated against
//     the paper's Table 2;
//   - internal/experiments — one runner per paper figure and table.
//
// Executables: cmd/rfexp regenerates every figure/table; cmd/rfsim runs a
// single benchmark × architecture simulation; cmd/rfbatch runs
// user-defined sweep matrices from a JSON spec (locally or, with
// -remote, on an rfserved fleet); cmd/rfserved serves sweeps over HTTP
// with durable results and scales out via -dispatch (coordinator) and
// -join (worker). See README.md and the runnable programs under
// examples/.
//
// The benchmarks in bench_test.go regenerate each experiment at a reduced
// instruction budget and report the headline metrics via b.ReportMetric.
package repro
