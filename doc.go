// Package repro is a from-scratch Go reproduction of "Multiple-Banked
// Register File Architectures" (Cruz, González, Valero, Topham; ISCA 2000).
//
// The public entry point is the rf package — the SDK external consumers
// import:
//
//   - rf — typed simulation configuration (functional options), the
//     architecture-family registry, workload profiles, single runs, and
//     sweep specs/runner, all schema-versioned (rf.SchemaVersion);
//   - rf/client — the Go client for the rfserved HTTP API (submission,
//     NDJSON streaming with mid-stream resume, status, cancel, worker
//     registration, version negotiation);
//   - rf/api — the versioned wire documents shared by client and server;
//   - rf/area — the area/access-time cost model.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's contribution: the register file cache
//     (two-level multi-banked register file with caching and prefetching
//     policies) plus the single-banked baselines and a one-level
//     multi-banked extension;
//   - internal/sim — the cycle-level 8-way out-of-order processor
//     (Table 1 of the paper) that evaluates them, including the lockstep
//     engine that drives several register file configurations off one
//     shared trace/predictor front-end pass;
//   - internal/arch — the architecture-family registry backing rf: one
//     place where each family's name, parameter schema, validator and
//     builder live;
//   - internal/sweep — the experiment orchestration engine: bounded
//     worker pool, pluggable content-addressed result cache, sweep-matrix
//     specs resolved through the registry;
//   - internal/store — the disk-backed result store behind rfbatch
//     -store and rfserved (atomic writes, LRU eviction, corruption
//     tolerance);
//   - internal/server — the rfserved HTTP sweep service;
//   - internal/tenant — multi-tenant admission control for rfserved:
//     API-key authentication, per-tenant rate limits and capacity
//     quotas, and a fair-share simulation-slot queue;
//   - internal/dispatch — coordinator/worker distribution of sweep jobs
//     across an rfserved fleet (lease-based pull protocol, failover
//     requeue, fleet-wide dedup by content address), built on rf/client;
//   - internal/trace — synthetic SPEC95-proxy workloads;
//   - internal/area — the area/access-time cost model calibrated against
//     the paper's Table 2;
//   - internal/experiments — one runner per paper figure and table.
//
// Executables: cmd/rfexp regenerates every figure/table; cmd/rfsim runs a
// single benchmark × architecture simulation (families resolved through
// the rf registry); cmd/rfbatch runs user-defined sweep matrices from a
// JSON spec (locally or, with -remote, on an rfserved fleet through
// rf/client); cmd/rfserved serves sweeps over HTTP with durable results
// and scales out via -dispatch (coordinator) and -join (worker). All
// print their build + schema version with -version. See README.md for
// usage, docs/ARCHITECTURE.md for the end-to-end system map (data flow,
// the lockstep front-end/back-end split, the NDJSON wire invariant, the
// fleet lease protocol), and the runnable programs under examples/,
// which compile against the public rf surface only.
//
// The benchmarks in bench_test.go regenerate each experiment at a reduced
// instruction budget and report the headline metrics via b.ReportMetric.
package repro
