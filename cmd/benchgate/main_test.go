package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeSnapshot drops a minimal BENCH_sim.json-shaped file.
func writeSnapshot(t *testing.T, path string, instrsPerSec map[string]float64) {
	t.Helper()
	snap := snapshot{Schema: 1, Benchmarks: map[string]record{}}
	for name, v := range instrsPerSec {
		snap.Benchmarks[name] = record{InstrsPerSec: v, SecPerOp: 1 / v}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// decodeVerdict requires the whole buffer to be exactly one JSON
// verdict — any interleaved log line fails the decode.
func decodeVerdict(t *testing.T, data []byte) verdict {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	var v verdict
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("stdout is not a single JSON verdict: %v\n%s", err, data)
	}
	if dec.More() {
		t.Fatalf("trailing content after the JSON verdict:\n%s", data)
	}
	return v
}

// TestMissingBaselineJSONToStdout is the regression test for the skip
// path: with -json - the skip verdict must be the only bytes on stdout
// (the log line used to precede it, breaking JSON consumers).
func TestMissingBaselineJSONToStdout(t *testing.T) {
	dir := t.TempDir()
	current := filepath.Join(dir, "current.json")
	writeSnapshot(t, current, map[string]float64{"monolithic": 3e6})

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", filepath.Join(dir, "nope.json"),
		"-current", current,
		"-json", "-",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("missing baseline exited %d, want 0 (skip)\nstderr: %s", code, stderr.String())
	}
	v := decodeVerdict(t, stdout.Bytes())
	if v.Status != "skip" || v.Reason == "" {
		t.Errorf("verdict = %+v, want status skip with a reason", v)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("benchgate: skip")) {
		t.Errorf("skip explanation missing from stderr: %q", stderr.String())
	}
}

// TestMissingBaselineJSONToFile pins the file form of the same path: the
// verdict file holds valid JSON and the human skip line stays on stdout.
func TestMissingBaselineJSONToFile(t *testing.T) {
	dir := t.TempDir()
	current := filepath.Join(dir, "current.json")
	writeSnapshot(t, current, map[string]float64{"monolithic": 3e6})
	out := filepath.Join(dir, "verdict.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", filepath.Join(dir, "nope.json"),
		"-current", current,
		"-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("missing baseline exited %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeVerdict(t, data); v.Status != "skip" {
		t.Errorf("verdict status = %q, want skip", v.Status)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("benchgate: skip")) {
		t.Errorf("skip message missing from stdout: %q", stdout.String())
	}
}

// TestGateVerdicts covers the ok and fail comparisons with -json - :
// stdout must be pure JSON in both, report lines on stderr, exit code
// reflecting the gate.
func TestGateVerdicts(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeSnapshot(t, base, map[string]float64{"monolithic": 3e6, "cache": 2.9e6})

	cases := []struct {
		name     string
		current  map[string]float64
		code     int
		status   string
		wantOKs  int
		failures int
	}{
		{"within tolerance", map[string]float64{"monolithic": 2.9e6, "cache": 2.9e6}, 0, "ok", 2, 0},
		{"regression", map[string]float64{"monolithic": 1e6, "cache": 2.9e6}, 1, "fail", 1, 1},
		{"missing benchmark", map[string]float64{"monolithic": 3e6}, 1, "fail", 1, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			current := filepath.Join(dir, "current.json")
			writeSnapshot(t, current, c.current)
			var stdout, stderr bytes.Buffer
			code := run([]string{
				"-baseline", base, "-current", current, "-json", "-",
			}, &stdout, &stderr)
			if code != c.code {
				t.Fatalf("exit = %d, want %d\nstderr: %s", code, c.code, stderr.String())
			}
			v := decodeVerdict(t, stdout.Bytes())
			if v.Status != c.status {
				t.Errorf("status = %q, want %q", v.Status, c.status)
			}
			oks, fails := 0, 0
			for _, cmp := range v.Benchmarks {
				if cmp.OK {
					oks++
				} else {
					fails++
				}
			}
			if oks != c.wantOKs || fails != c.failures {
				t.Errorf("verdict counts ok=%d fail=%d, want ok=%d fail=%d", oks, fails, c.wantOKs, c.failures)
			}
			if stderr.Len() == 0 {
				t.Error("report lines missing from stderr")
			}
		})
	}
}

// TestUsageErrors pins the error exit code, and that -h stays exit 0
// (the behavior flag.ExitOnError gave the tool before the refactor).
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing -current exited %d, want 2", code)
	}
	if code := run([]string{"-current", "/does/not/exist.json", "-baseline", os.Args[0]}, &stdout, &stderr); code != 2 {
		t.Errorf("unreadable current exited %d, want 2", code)
	}
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
}
