// Command benchgate compares a freshly measured benchmark snapshot (the
// BENCH_sim.json emitted by `go test -bench ... -benchjson ...`) against
// a committed baseline and fails when any benchmark's simulation
// throughput regresses beyond a tolerance. CI runs it on every pull
// request; see the README's Performance section for the workflow and for
// refreshing the baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_sim.json -current ci/BENCH_sim.json
//	          [-tolerance 0.20] [-json verdict.json]
//
// When the baseline file does not exist — the merge-base predates the
// benchmark harness — benchgate prints a skip message and exits 0, so CI
// can invoke it unconditionally. With -json it also emits a
// machine-readable verdict: per-benchmark ratios, the overall status
// (ok, fail or skip), and the sweep-cache hit/miss counts carried in each
// snapshot's "cache" section. `-json -` writes the verdict to stdout; all
// human-readable report lines then move to stderr, so stdout is always a
// single valid JSON document — including on the missing-baseline skip
// path, which used to interleave a log line with the verdict stream.
//
// The tolerance is generous by design: CI runners vary, and the gate is
// meant to catch algorithmic regressions (a scan reintroduced in the cycle
// loop), not scheduler noise.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// cacheCounts mirrors the optional sweep-cache section of a snapshot
// (sweep.CacheStats as written by the -benchjson harness).
type cacheCounts struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type snapshot struct {
	Schema     int               `json:"schema"`
	Go         string            `json:"go"`
	Instrs     uint64            `json:"instructions_per_run"`
	Benchmarks map[string]record `json:"benchmarks"`
	Cache      *cacheCounts      `json:"cache,omitempty"`
	// LockstepWidth is the batch width the harness's lockstep benchmark
	// drove through one shared front-end pass (0: snapshot predates it).
	LockstepWidth int `json:"lockstep_width,omitempty"`
}

type record struct {
	InstrsPerSec float64 `json:"instrs_per_sec"`
	SecPerOp     float64 `json:"sec_per_op"`
}

// verdict is the machine-readable gate result written by -json.
type verdict struct {
	Schema int `json:"schema"`
	// Status is ok, fail or skip.
	Status    string  `json:"status"`
	Reason    string  `json:"reason,omitempty"`
	Baseline  string  `json:"baseline"`
	Current   string  `json:"current"`
	Tolerance float64 `json:"tolerance"`
	// Benchmarks maps each baseline benchmark to its comparison.
	Benchmarks map[string]comparison `json:"benchmarks,omitempty"`
	// Cache carries the sweep-cache hit/miss counts of each snapshot,
	// when the harness recorded them.
	Cache struct {
		Baseline *cacheCounts `json:"baseline,omitempty"`
		Current  *cacheCounts `json:"current,omitempty"`
	} `json:"cache"`
	// Lockstep carries each snapshot's lockstep batch width, when the
	// harness recorded one (0: snapshot predates the lockstep benchmark).
	Lockstep struct {
		BaselineWidth int `json:"baseline_width,omitempty"`
		CurrentWidth  int `json:"current_width,omitempty"`
	} `json:"lockstep"`
}

type comparison struct {
	BaselineInstrsPerSec float64 `json:"baseline_instrs_per_sec"`
	CurrentInstrsPerSec  float64 `json:"current_instrs_per_sec"`
	Ratio                float64 `json:"ratio"`
	OK                   bool    `json:"ok"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

// emit writes the verdict JSON, if requested: to stdout for "-", to the
// named file otherwise. It reports (rather than exits on) failure so run
// stays testable.
func emit(path string, v verdict, stdout, stderr io.Writer) bool {
	if path == "" {
		return true
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		data = append(data, '\n')
		if path == "-" {
			_, err = stdout.Write(data)
		} else {
			err = os.WriteFile(path, data, 0o644)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: writing %s: %v\n", path, err)
		return false
	}
	return true
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole gate; main only binds it to the process. The exit
// code is 0 for ok/skip, 1 for a regression, 2 for usage or I/O errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_sim.json", "committed baseline snapshot")
	current := fs.String("current", "", "freshly measured snapshot to check")
	tolerance := fs.Float64("tolerance", 0.20, "maximum allowed fractional throughput regression")
	jsonOut := fs.String("json", "", "write a machine-readable verdict to this path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h prints usage; matches the pre-refactor ExitOnError behavior
		}
		return 2
	}
	if *current == "" {
		fmt.Fprintln(stderr, "benchgate: -current is required")
		return 2
	}
	// With the verdict going to stdout, the human-readable report moves
	// to stderr so stdout stays one valid JSON document.
	human := stdout
	if *jsonOut == "-" {
		human = stderr
	}
	v := verdict{
		Schema: 1, Baseline: *baseline, Current: *current, Tolerance: *tolerance,
	}

	// A missing baseline is a skip, not a failure: the merge-base
	// predates the benchmark harness, so there is nothing to gate against.
	if _, err := os.Stat(*baseline); os.IsNotExist(err) {
		fmt.Fprintf(human, "benchgate: skip: no baseline snapshot at %s (merge-base predates the benchmark harness)\n", *baseline)
		v.Status = "skip"
		v.Reason = fmt.Sprintf("baseline %s does not exist", *baseline)
		if !emit(*jsonOut, v, stdout, stderr) {
			return 2
		}
		return 0
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: baseline: %v\n", err)
		return 2
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: current: %v\n", err)
		return 2
	}
	v.Cache.Baseline = base.Cache
	v.Cache.Current = cur.Cache
	v.Lockstep.BaselineWidth = base.LockstepWidth
	v.Lockstep.CurrentWidth = cur.LockstepWidth
	v.Benchmarks = make(map[string]comparison)

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(human, "FAIL %-18s missing from the current snapshot\n", name)
			v.Benchmarks[name] = comparison{BaselineInstrsPerSec: b.InstrsPerSec}
			failed = true
			continue
		}
		ratio := c.InstrsPerSec / b.InstrsPerSec
		ok = ratio >= 1-*tolerance
		v.Benchmarks[name] = comparison{
			BaselineInstrsPerSec: b.InstrsPerSec,
			CurrentInstrsPerSec:  c.InstrsPerSec,
			Ratio:                ratio,
			OK:                   ok,
		}
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(human, "%s %-18s %12.0f -> %12.0f instrs/s (%+.1f%%)\n",
			status, name, b.InstrsPerSec, c.InstrsPerSec, 100*(ratio-1))
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(human, "note %-18s new benchmark (not in baseline); refresh the baseline to track it\n", name)
		}
	}
	if cc := cur.Cache; cc != nil {
		fmt.Fprintf(human, "cache               %d hits / %d misses in the current snapshot's sweep benchmark\n", cc.Hits, cc.Misses)
	}
	if cur.LockstepWidth > 0 {
		fmt.Fprintf(human, "lockstep            batch width %d in the current snapshot's lockstep benchmark\n", cur.LockstepWidth)
	}

	v.Status = "ok"
	if failed {
		v.Status = "fail"
	}
	if !emit(*jsonOut, v, stdout, stderr) {
		return 2
	}
	if failed {
		fmt.Fprintf(human, "\nbenchgate: throughput regressed more than %.0f%% vs %s\n", 100**tolerance, *baseline)
		fmt.Fprintln(human, "If the regression is intended, refresh the baseline:")
		fmt.Fprintln(human, "  go test -bench 'BenchmarkSim$|BenchmarkSweepRunner$|BenchmarkLockstep$' -benchtime 10x -run '^$' -benchjson BENCH_sim.json .")
		return 1
	}
	return 0
}
