// Command benchgate compares a freshly measured benchmark snapshot (the
// BENCH_sim.json emitted by `go test -bench BenchmarkSim -benchjson ...`)
// against a committed baseline and fails when any benchmark's simulation
// throughput regresses beyond a tolerance. CI runs it on every pull
// request; see the README's Performance section for the workflow and for
// refreshing the baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_sim.json -current ci/BENCH_sim.json [-tolerance 0.20]
//
// The tolerance is generous by design: CI runners vary, and the gate is
// meant to catch algorithmic regressions (a scan reintroduced in the cycle
// loop), not scheduler noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Schema     int               `json:"schema"`
	Go         string            `json:"go"`
	Instrs     uint64            `json:"instructions_per_run"`
	Benchmarks map[string]record `json:"benchmarks"`
}

type record struct {
	InstrsPerSec float64 `json:"instrs_per_sec"`
	SecPerOp     float64 `json:"sec_per_op"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_sim.json", "committed baseline snapshot")
	current := flag.String("current", "", "freshly measured snapshot to check")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed fractional throughput regression")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %-18s missing from the current snapshot\n", name)
			failed = true
			continue
		}
		ratio := c.InstrsPerSec / b.InstrsPerSec
		status := "ok  "
		if ratio < 1-*tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-18s %12.0f -> %12.0f instrs/s (%+.1f%%)\n",
			status, name, b.InstrsPerSec, c.InstrsPerSec, 100*(ratio-1))
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("note %-18s new benchmark (not in baseline); refresh the baseline to track it\n", name)
		}
	}
	if failed {
		fmt.Printf("\nbenchgate: throughput regressed more than %.0f%% vs %s\n", 100**tolerance, *baseline)
		fmt.Println("If the regression is intended, refresh the baseline:")
		fmt.Println("  go test -bench 'BenchmarkSim$' -benchtime 10x -run '^$' -benchjson BENCH_sim.json .")
		os.Exit(1)
	}
}
