// Command benchgate compares a freshly measured benchmark snapshot (the
// BENCH_sim.json emitted by `go test -bench ... -benchjson ...`) against
// a committed baseline and fails when any benchmark's simulation
// throughput regresses beyond a tolerance. CI runs it on every pull
// request; see the README's Performance section for the workflow and for
// refreshing the baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_sim.json -current ci/BENCH_sim.json
//	          [-tolerance 0.20] [-json verdict.json]
//
// When the baseline file does not exist — the merge-base predates the
// benchmark harness — benchgate prints a skip message and exits 0, so CI
// can invoke it unconditionally. With -json it also emits a
// machine-readable verdict: per-benchmark ratios, the overall status
// (ok, fail or skip), and the sweep-cache hit/miss counts carried in each
// snapshot's "cache" section.
//
// The tolerance is generous by design: CI runners vary, and the gate is
// meant to catch algorithmic regressions (a scan reintroduced in the cycle
// loop), not scheduler noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// cacheCounts mirrors the optional sweep-cache section of a snapshot
// (sweep.CacheStats as written by the -benchjson harness).
type cacheCounts struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type snapshot struct {
	Schema     int               `json:"schema"`
	Go         string            `json:"go"`
	Instrs     uint64            `json:"instructions_per_run"`
	Benchmarks map[string]record `json:"benchmarks"`
	Cache      *cacheCounts      `json:"cache,omitempty"`
}

type record struct {
	InstrsPerSec float64 `json:"instrs_per_sec"`
	SecPerOp     float64 `json:"sec_per_op"`
}

// verdict is the machine-readable gate result written by -json.
type verdict struct {
	Schema int `json:"schema"`
	// Status is ok, fail or skip.
	Status    string  `json:"status"`
	Reason    string  `json:"reason,omitempty"`
	Baseline  string  `json:"baseline"`
	Current   string  `json:"current"`
	Tolerance float64 `json:"tolerance"`
	// Benchmarks maps each baseline benchmark to its comparison.
	Benchmarks map[string]comparison `json:"benchmarks,omitempty"`
	// Cache carries the sweep-cache hit/miss counts of each snapshot,
	// when the harness recorded them.
	Cache struct {
		Baseline *cacheCounts `json:"baseline,omitempty"`
		Current  *cacheCounts `json:"current,omitempty"`
	} `json:"cache"`
}

type comparison struct {
	BaselineInstrsPerSec float64 `json:"baseline_instrs_per_sec"`
	CurrentInstrsPerSec  float64 `json:"current_instrs_per_sec"`
	Ratio                float64 `json:"ratio"`
	OK                   bool    `json:"ok"`
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

// emit writes the verdict JSON, if requested.
func emit(path string, v verdict) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", path, err)
		os.Exit(2)
	}
}

func main() {
	baseline := flag.String("baseline", "BENCH_sim.json", "committed baseline snapshot")
	current := flag.String("current", "", "freshly measured snapshot to check")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed fractional throughput regression")
	jsonOut := flag.String("json", "", "write a machine-readable verdict to this path")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	v := verdict{
		Schema: 1, Baseline: *baseline, Current: *current, Tolerance: *tolerance,
	}

	// A missing baseline is a skip, not a failure: the merge-base
	// predates the benchmark harness, so there is nothing to gate against.
	if _, err := os.Stat(*baseline); os.IsNotExist(err) {
		fmt.Printf("benchgate: skip: no baseline snapshot at %s (merge-base predates the benchmark harness)\n", *baseline)
		v.Status = "skip"
		v.Reason = fmt.Sprintf("baseline %s does not exist", *baseline)
		emit(*jsonOut, v)
		return
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	v.Cache.Baseline = base.Cache
	v.Cache.Current = cur.Cache
	v.Benchmarks = make(map[string]comparison)

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %-18s missing from the current snapshot\n", name)
			v.Benchmarks[name] = comparison{BaselineInstrsPerSec: b.InstrsPerSec}
			failed = true
			continue
		}
		ratio := c.InstrsPerSec / b.InstrsPerSec
		ok = ratio >= 1-*tolerance
		v.Benchmarks[name] = comparison{
			BaselineInstrsPerSec: b.InstrsPerSec,
			CurrentInstrsPerSec:  c.InstrsPerSec,
			Ratio:                ratio,
			OK:                   ok,
		}
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-18s %12.0f -> %12.0f instrs/s (%+.1f%%)\n",
			status, name, b.InstrsPerSec, c.InstrsPerSec, 100*(ratio-1))
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("note %-18s new benchmark (not in baseline); refresh the baseline to track it\n", name)
		}
	}
	if cc := cur.Cache; cc != nil {
		fmt.Printf("cache               %d hits / %d misses in the current snapshot's sweep benchmark\n", cc.Hits, cc.Misses)
	}

	v.Status = "ok"
	if failed {
		v.Status = "fail"
	}
	emit(*jsonOut, v)
	if failed {
		fmt.Printf("\nbenchgate: throughput regressed more than %.0f%% vs %s\n", 100**tolerance, *baseline)
		fmt.Println("If the regression is intended, refresh the baseline:")
		fmt.Println("  go test -bench 'BenchmarkSim$|BenchmarkSweepRunner$' -benchtime 10x -run '^$' -benchjson BENCH_sim.json .")
		os.Exit(1)
	}
}
