// Command rfsim runs one benchmark on one register file architecture and
// prints the simulation statistics. Architectures resolve by name
// through the rf family registry — the same names a sweep spec uses.
//
// Usage:
//
//	rfsim -bench gcc -rf rfcache [-n 200000] [-rports 4] [-wports 3] [-buses 2]
//	rfsim -list
//	rfsim -version
//
// Register file architectures (-rf; see -list for the registry):
//
//	1cycle     one-cycle single-banked file (full bypass)
//	2cycle     two-cycle single-banked file, two bypass levels
//	2cycle1b   two-cycle single-banked file, one bypass level
//	rfcache    two-level register file cache (the paper's proposal)
//	onelevel   one-level multi-banked organization (extension)
//	replicated fully-replicated clustered file (extension)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/rf"
)

func main() {
	var (
		bench    = flag.String("bench", "compress", "benchmark name (see -list)")
		rfKind   = flag.String("rf", "rfcache", "register file architecture family (see -list)")
		n        = flag.Uint64("n", 200000, "dynamic instructions to commit")
		rports   = flag.Int("rports", 0, "read ports (0 = unlimited)")
		wports   = flag.Int("wports", 0, "write ports (0 = unlimited)")
		buses    = flag.Int("buses", 0, "rf-cache buses (0 = unlimited)")
		upper    = flag.Int("upper", 16, "rf-cache upper bank size")
		caching  = flag.String("caching", "nonbypass", "rf-cache caching policy: nonbypass|ready|all|none")
		pf       = flag.Bool("prefetch", true, "rf-cache prefetch-first-pair")
		banks    = flag.Int("banks", 2, "one-level bank count")
		clusters = flag.Int("clusters", 2, "replicated cluster count")
		list     = flag.Bool("list", false, "list benchmarks and architecture families, then exit")
		version  = flag.Bool("version", false, "print the module version and API schema version, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("rfsim %s (schema %d)\n", rf.ModuleVersion(), rf.SchemaVersion)
		return
	}
	if *list {
		fmt.Println("SpecInt95 proxies:")
		for _, p := range rf.SpecInt95() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("SpecFP95 proxies:")
		for _, p := range rf.SpecFP95() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("Architecture families:")
		for _, f := range rf.Families() {
			fmt.Printf("  %-10s %s\n", f.Name, f.Doc)
		}
		return
	}

	prof, ok := rf.Benchmark(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "rfsim: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(1)
	}

	// One point of the family's parameter space: single-value dimension
	// lists, resolved through the same registry path a sweep spec takes.
	prefetch := "firstpair"
	if !*pf {
		prefetch = "demand"
	}
	m := rf.ArchMatrix{
		Kind:       *rfKind,
		ReadPorts:  []int{*rports},
		WritePorts: []int{*wports},
		Buses:      []int{*buses},
		UpperSizes: []int{*upper},
		Caching:    []string{*caching},
		Prefetch:   []string{prefetch},
		Banks:      []int{*banks},
		Clusters:   []int{*clusters},
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rfsim: %v (use -list)\n", err)
		os.Exit(1)
	}
	points, err := m.Expand()
	if err != nil || len(points) == 0 {
		fmt.Fprintf(os.Stderr, "rfsim: %v\n", err)
		os.Exit(1)
	}
	spec := points[0].RF

	cfg := rf.NewConfig(spec, rf.MaxInstructions(*n))
	r := rf.Run(cfg, prof)

	fmt.Printf("benchmark:        %s\n", prof.Name)
	fmt.Printf("register file:    %s\n", spec.Name)
	fmt.Printf("instructions:     %d (measured after warmup)\n", r.Instructions)
	fmt.Printf("cycles:           %d\n", r.Cycles)
	fmt.Printf("IPC:              %.3f\n", r.IPC)
	fmt.Printf("branch mispredict: %.2f%% (%d/%d)\n", 100*r.MispredictRate(), r.Mispredicts, r.Branches)
	fmt.Printf("I-cache miss:     %.2f%%\n", 100*r.ICacheMissRate)
	fmt.Printf("D-cache miss:     %.2f%%\n", 100*r.DCacheMissRate)
	fmt.Printf("store forwards:   %d\n", r.StoreForwards)
	fmt.Printf("dispatch stalls:  %d cycles\n", r.DispatchStalls)
	for _, f := range []struct {
		name string
		st   rf.FileStats
	}{{"int", r.IntFile}, {"fp", r.FPFile}} {
		fmt.Printf("%s file:          reads %d, bypass %d, port-conflicts %d\n",
			f.name, f.st.Reads, f.st.BypassReads, f.st.ReadPortConflicts)
		if spec.Kind == rf.RFCache {
			fmt.Printf("                  upper hits %d, demand fetches %d, prefetches %d, caching writes %d (skipped %d), evictions %d\n",
				f.st.UpperHits, f.st.DemandFetches, f.st.Prefetches,
				f.st.CachingWrites, f.st.CachingSkipped, f.st.Evictions)
		}
	}
}
