// Command rfsim runs one benchmark on one register file architecture and
// prints the simulation statistics.
//
// Usage:
//
//	rfsim -bench gcc -rf rfcache [-n 200000] [-rports 4] [-wports 3] [-buses 2]
//	rfsim -list
//
// Register file architectures (-rf):
//
//	1cycle    one-cycle single-banked file (full bypass)
//	2cycle    two-cycle single-banked file, two bypass levels
//	2cycle1b  two-cycle single-banked file, one bypass level
//	rfcache   two-level register file cache (the paper's proposal)
//	onelevel  one-level multi-banked organization (extension)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "compress", "benchmark name (see -list)")
		rf      = flag.String("rf", "rfcache", "register file architecture")
		n       = flag.Uint64("n", 200000, "dynamic instructions to commit")
		rports  = flag.Int("rports", 0, "read ports (0 = unlimited)")
		wports  = flag.Int("wports", 0, "write ports (0 = unlimited)")
		buses   = flag.Int("buses", 0, "rf-cache buses (0 = unlimited)")
		upper   = flag.Int("upper", 16, "rf-cache upper bank size")
		caching = flag.String("caching", "nonbypass", "rf-cache caching policy: nonbypass|ready|all|none")
		pf      = flag.Bool("prefetch", true, "rf-cache prefetch-first-pair")
		banks   = flag.Int("banks", 2, "one-level bank count")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("SpecInt95 proxies:")
		for _, p := range trace.SpecInt95() {
			fmt.Printf("  %s\n", p.Name)
		}
		fmt.Println("SpecFP95 proxies:")
		for _, p := range trace.SpecFP95() {
			fmt.Printf("  %s\n", p.Name)
		}
		return
	}

	prof, ok := trace.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "rfsim: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(1)
	}

	ports := func(v int) int {
		if v <= 0 {
			return core.Unlimited
		}
		return v
	}

	var spec sim.RFSpec
	switch *rf {
	case "1cycle":
		spec = sim.Mono1Cycle(ports(*rports), ports(*wports))
	case "2cycle":
		spec = sim.Mono2CycleFull(ports(*rports), ports(*wports))
	case "2cycle1b":
		spec = sim.Mono2CycleSingle(ports(*rports), ports(*wports))
	case "rfcache":
		cfg := core.PaperCacheConfig()
		cfg.ReadPorts = ports(*rports)
		cfg.UpperWritePorts = ports(*wports)
		cfg.LowerWritePorts = ports(*wports)
		cfg.Buses = ports(*buses)
		cfg.UpperSize = *upper
		pol, err := sweep.ParseCachingPolicy(*caching)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfsim: %v\n", err)
			os.Exit(1)
		}
		cfg.Caching = pol
		if !*pf {
			cfg.Prefetch = core.FetchOnDemand
		}
		spec = sim.CacheSpec(cfg)
	case "onelevel":
		spec = sim.OneLevelSpec(core.OneLevelConfig{
			Banks:             *banks,
			ReadPortsPerBank:  ports(*rports),
			WritePortsPerBank: ports(*wports),
		})
	default:
		fmt.Fprintf(os.Stderr, "rfsim: unknown register file %q\n", *rf)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig(spec, *n)
	r := sim.New(cfg, trace.New(prof)).Run()

	fmt.Printf("benchmark:        %s\n", prof.Name)
	fmt.Printf("register file:    %s\n", spec.Name)
	fmt.Printf("instructions:     %d (measured after warmup)\n", r.Instructions)
	fmt.Printf("cycles:           %d\n", r.Cycles)
	fmt.Printf("IPC:              %.3f\n", r.IPC)
	fmt.Printf("branch mispredict: %.2f%% (%d/%d)\n", 100*r.MispredictRate(), r.Mispredicts, r.Branches)
	fmt.Printf("I-cache miss:     %.2f%%\n", 100*r.ICacheMissRate)
	fmt.Printf("D-cache miss:     %.2f%%\n", 100*r.DCacheMissRate)
	fmt.Printf("store forwards:   %d\n", r.StoreForwards)
	fmt.Printf("dispatch stalls:  %d cycles\n", r.DispatchStalls)
	for _, f := range []struct {
		name string
		st   core.FileStats
	}{{"int", r.IntFile}, {"fp", r.FPFile}} {
		fmt.Printf("%s file:          reads %d, bypass %d, port-conflicts %d\n",
			f.name, f.st.Reads, f.st.BypassReads, f.st.ReadPortConflicts)
		if *rf == "rfcache" {
			fmt.Printf("                  upper hits %d, demand fetches %d, prefetches %d, caching writes %d (skipped %d), evictions %d\n",
				f.st.UpperHits, f.st.DemandFetches, f.st.Prefetches,
				f.st.CachingWrites, f.st.CachingSkipped, f.st.Evictions)
		}
	}
}
