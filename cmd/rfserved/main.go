// Command rfserved serves the sweep engine over HTTP: clients POST JSON
// sweep specifications (the cmd/rfbatch schema), poll status, and stream
// per-job results as NDJSON while jobs complete. Results are memoized in
// a disk-backed content-addressed store, so identical configurations are
// simulated once per store — across sweeps, clients and restarts.
//
// Usage:
//
//	rfserved [-addr host:port] [-addr-file path] [-store dir]
//	         [-store-max-mb n] [-store-remote url,...] [-store-shards n]
//	         [-workers n] [-sweep-workers n] [-max-jobs n]
//	         [-lockstep width] [-wal-dir dir]
//	         [-tenants file] [-default-rate r] [-default-burst n]
//	         [-max-active-per-tenant n] [-max-queued-per-tenant n]
//	         [-max-store-mb-per-tenant n] [-warehouse-dir dir]
//	         [-dispatch [-lease-ms n] [-max-capacity n] [-job-timeout d]]
//	         [-join url [-capacity n] [-worker-name s]]
//
// Quickstart:
//
//	rfserved -addr 127.0.0.1:8090 -store /var/tmp/rfstore &
//	rfbatch -example > spec.json
//	curl -s -X POST --data-binary @spec.json localhost:8090/v1/sweeps
//	curl -s localhost:8090/v1/sweeps/s000001/results   # NDJSON stream
//	curl -s localhost:8090/v1/sweeps/s000001           # status
//	curl -s localhost:8090/metrics                     # throughput, cache, queue
//
// Fleet mode distributes sweeps across machines: one coordinator accepts
// the sweeps, any number of workers execute them.
//
//	rfserved -dispatch -addr :8090 -store /var/tmp/rfstore   # coordinator
//	rfserved -join http://coordinator:8090 -addr :0          # worker (×N)
//
// Multi-tenant mode puts API keys and quotas in front of the service:
//
//	rfserved -tenants tenants.json -default-rate 5 -max-active-per-tenant 2
//
// The tenants file maps API keys (X-RF-API-Key header, or Authorization:
// Bearer) to named tenants with per-tenant rate limits, capacity quotas
// and scheduling priorities; unauthenticated callers become the
// "anonymous" tenant. Over-limit requests get 429 with a Retry-After
// hint, and /metrics grows per-tenant rows. Without -tenants (or any
// -default-* flag) the server behaves exactly as before. SIGHUP
// reloads the -tenants file in place — rotated API keys take effect
// without a restart or any disturbance to running sweeps and open
// result streams. See the README's "Authentication & quotas" section
// for the file format.
//
// With -warehouse-dir the server maintains a columnar index of every
// completed sweep (one segment per sweep) and serves the /v1/query API
// over it: filtered row pages, grouped aggregates, Pareto frontiers
// and figure series computed server-side, so clients render paper
// figures without streaming a single row. The warehouse is never
// authoritative — delete the directory and the next start rebuilds it
// from the content-addressed store. Without the flag, serving is
// byte-identical to previous releases.
//
// The store itself can span the fleet. -store-remote adds remote HTTP
// tiers (other rfserved object APIs, comma-separated) consulted on a
// local miss with hedged fetches; hits are promoted into the local
// store and local writes replicate back asynchronously. On a
// coordinator, -store-shards N turns on the fleet-peer tier: workers
// advertise which key-shard buckets their stores hold on every poll,
// and the coordinator reads misses straight from the owning peers
// before simulating. Either way the NDJSON stream stays byte-identical
// to a single-node run. Outbound tier requests authenticate with
// RF_API_KEY when set.
//
// A coordinator shards each sweep's jobs across registered workers
// (lease-based pull protocol, see internal/dispatch), merges rows back
// in job order, and falls back to simulating locally when a job exhausts
// its remote retries — the NDJSON stream stays byte-identical to a
// single-node run either way. Workers are plain rfserved processes: they
// run leased jobs through their own cached runner (and store, with
// -store) while still serving their own /v1/sweeps API.
//
// With -wal-dir the server journals every sweep transition (and, in
// coordinator mode, every dispatch transition) to a write-ahead log in
// that directory. A crashed or SIGKILLed server restarted on the same
// -wal-dir replays the journal, resumes interrupted sweeps where they
// stopped (completed rows are never re-simulated; result streams stay
// byte-identical), and re-adopts workers' in-flight leases as they poll
// back in. Without -wal-dir behavior is exactly as before: state dies
// with the process.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// sweeps, cancels running ones, flushes the store index, and exits. See
// the README's "rfserved service" section for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/internal/warehouse"
	"repro/rf"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		storeDir   = flag.String("store", "", "disk-backed result store directory (empty: in-memory only)")
		storeMaxMB = flag.Int64("store-max-mb", 0, "store size cap in MiB before LRU eviction (0: unlimited)")
		storeRem   = flag.String("store-remote", "", "comma-separated rfserved base URLs consulted as remote store tiers on a local miss (hedged; RF_API_KEY authenticates)")
		storeShard = flag.Int("store-shards", 0, "coordinator mode: shard-bucket count for the fleet-peer store tier (0: off); also rendezvous-routes -store-remote tiers per key")
		workers    = flag.Int("workers", 0, "global concurrent-simulation bound (0: GOMAXPROCS; coordinator mode: 256)")
		sweepWork  = flag.Int("sweep-workers", 0, "per-sweep worker budget cap (0: same as -workers)")
		maxJobs    = flag.Int("max-jobs", 0, "reject specs expanding to more jobs than this (0: 100000)")
		lockstep   = flag.Int("lockstep", 0, "lockstep batch width for local simulation: 0 groups up to 16 same-workload configurations per trace pass, 1 disables grouping (results are identical either way)")
		walDir     = flag.String("wal-dir", "", "write-ahead-log directory enabling crash-resume (empty: no journal, state dies with the process)")
		tenantsF   = flag.String("tenants", "", "tenants JSON file enabling API-key auth and per-tenant quotas")
		defRate    = flag.Float64("default-rate", 0, "default per-tenant request rate in req/s (0: unlimited)")
		defBurst   = flag.Int("default-burst", 0, "default per-tenant request burst (0: derived from -default-rate)")
		maxActive  = flag.Int("max-active-per-tenant", 0, "default per-tenant concurrent-sweep cap (0: unlimited)")
		maxQueued  = flag.Int("max-queued-per-tenant", 0, "default per-tenant unresolved-job cap (0: unlimited)")
		maxStoreMB = flag.Int64("max-store-mb-per-tenant", 0, "default per-tenant object-upload byte budget in MiB (0: unlimited)")
		warehouseD = flag.String("warehouse-dir", "", "columnar warehouse directory enabling the /v1/query API (empty: off, serving is byte-identical)")
		dispatchF  = flag.Bool("dispatch", false, "coordinator mode: execute sweeps on registered remote workers (/v1/workers API)")
		leaseMS    = flag.Int64("lease-ms", 10000, "coordinator mode: worker lease TTL in milliseconds")
		maxCap     = flag.Int("max-capacity", 0, "coordinator mode: cap on any single worker's in-flight budget (0: 64)")
		jobTimeout = flag.Duration("job-timeout", 0, "coordinator mode: requeue a leased job after this long even if its worker keeps heartbeating (0: never; set only if you know the workload's ceiling)")
		join       = flag.String("join", "", "worker mode: pull and execute jobs from this coordinator URL")
		capacity   = flag.Int("capacity", 0, "worker mode: concurrent leased-job budget (0: GOMAXPROCS)")
		workerName = flag.String("worker-name", "", "worker mode: label reported to the coordinator (default: hostname)")
		version    = flag.Bool("version", false, "print the module version and API schema version, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("rfserved %s (schema %d)\n", rf.ModuleVersion(), rf.SchemaVersion)
		return
	}
	if *dispatchF && *join != "" {
		fatal(errors.New("-dispatch and -join are mutually exclusive (a worker cannot also coordinate)"))
	}

	cfg := server.Config{
		MaxWorkers:      *workers,
		MaxSweepWorkers: *sweepWork,
		MaxJobs:         *maxJobs,
		Lockstep:        *lockstep,
	}
	defaults := tenant.Limits{
		Rate: *defRate, Burst: *defBurst,
		MaxActive: *maxActive, MaxQueued: *maxQueued,
		MaxStoreBytes: *maxStoreMB << 20,
	}
	switch {
	case *tenantsF != "":
		reg, err := tenant.LoadFile(*tenantsF, defaults)
		if err != nil {
			fatal(err)
		}
		cfg.Tenants = reg
		fmt.Fprintf(os.Stderr, "rfserved: %d tenants loaded from %s\n", reg.Len(), *tenantsF)
	case defaults != (tenant.Limits{}):
		// Quotas without a key file: every caller is the anonymous tenant,
		// bounded by the defaults.
		cfg.Tenants = tenant.NewRegistry(defaults)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	// Journals open before the coordinator and server are built: both
	// replay their WAL during construction. The server resumes each
	// interrupted sweep by re-running only its unfinished jobs, and in
	// coordinator mode those jobs re-attach (by content key) to the tasks
	// the coordinator's own replay reconstructed — so workers that kept
	// running through the outage deliver into the resumed sweeps instead
	// of simulating anything twice.
	var serverWAL, coordWAL *wal.WAL
	if *walDir != "" {
		var err error
		serverWAL, err = wal.Open(filepath.Join(*walDir, "server"), wal.Options{})
		if err != nil {
			fatal(err)
		}
		cfg.Journal = serverWAL
		cfg.Logf = logf
		if *dispatchF {
			coordWAL, err = wal.Open(filepath.Join(*walDir, "coordinator"), wal.Options{})
			if err != nil {
				fatal(err)
			}
			cfg.ExtraJournals = map[string]*wal.WAL{"coordinator": coordWAL}
		}
		fmt.Fprintf(os.Stderr, "rfserved: journaling to %s\n", *walDir)
	}
	if *dispatchF {
		cfg.Dispatcher = dispatch.NewCoordinator(dispatch.Config{
			LeaseTTL:    time.Duration(*leaseMS) * time.Millisecond,
			MaxCapacity: *maxCap,
			JobTimeout:  *jobTimeout,
			Journal:     coordWAL,
			Logf:        logf,
			StoreShards: *storeShard,
		})
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxMB << 20})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rfserved: store %s (%d entries, %.1f MiB)\n",
			*storeDir, st.Len(), float64(st.SizeBytes())/(1<<20))
		// The object API serves this node's store to the rest of the
		// fleet, behind the same tenant auth as sweep submissions.
		cfg.Objects = st.Backend()
	}
	// Assemble the tiered store: local first, then the fleet-peer tier
	// (coordinator mode with sharding on), then any explicit remotes.
	ropts := store.RemoteOptions{APIKey: os.Getenv("RF_API_KEY")}
	var remoteTiers []store.Tier
	if cfg.Dispatcher != nil && *storeShard > 0 {
		remoteTiers = append(remoteTiers, store.Tier{
			Name: "peer", Backend: store.NewPeer(cfg.Dispatcher, ropts),
		})
	}
	for _, u := range strings.Split(*storeRem, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		remoteTiers = append(remoteTiers, store.Tier{
			Name: "remote", ID: u,
			Backend:      store.NewRemote(u, ropts),
			WriteThrough: true,
		})
		fmt.Fprintf(os.Stderr, "rfserved: remote store tier %s\n", u)
	}
	var tiers *store.Tiers
	switch {
	case len(remoteTiers) > 0:
		tiers = store.NewTiers(store.TierConfig{
			Local: st, Remotes: remoteTiers, Shards: *storeShard,
		})
		// A small in-memory front keeps hot keys off the fetch path.
		cfg.Cache = sweep.Tiered(sweep.NewMemCache(), tiers)
		cfg.TierStats = tiers.Stats
	case st != nil:
		// A small in-memory front keeps hot keys off the disk path.
		cfg.Cache = sweep.Tiered(sweep.NewMemCache(), st)
	}

	if *warehouseD != "" {
		wh, err := warehouse.Open(*warehouseD, warehouse.Options{Logf: logf})
		if err != nil {
			fatal(err)
		}
		cfg.Warehouse = wh
		ws := wh.Stats()
		fmt.Fprintf(os.Stderr, "rfserved: warehouse %s (%d segments, %d rows)\n",
			*warehouseD, ws.Segments, ws.Rows)
	}

	srv := server.New(cfg)
	// SIGHUP rotates the tenant key set in place: the -tenants file is
	// reloaded with the same defaults and swapped atomically. In-flight
	// requests and open result streams are untouched; a bad file keeps
	// the old registry. Only meaningful with -tenants — quota-only and
	// open deployments have nothing to reload.
	if *tenantsF != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				reg, err := tenant.LoadFile(*tenantsF, defaults)
				if err != nil {
					fmt.Fprintf(os.Stderr, "rfserved: SIGHUP: keeping old tenants: %v\n", err)
					continue
				}
				srv.SetTenants(reg)
				fmt.Fprintf(os.Stderr, "rfserved: SIGHUP: %d tenants reloaded from %s\n", reg.Len(), *tenantsF)
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rfserved: listening on %s\n", bound)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Worker mode: pull jobs from the coordinator alongside the normal
	// API. Jobs run through this process's cached runner, so the local
	// store (and -workers budget) covers leased work too.
	workerDone := make(chan error, 1)
	if *join != "" {
		name := *workerName
		if name == "" {
			name, _ = os.Hostname()
		}
		fmt.Fprintf(os.Stderr, "rfserved: joining fleet at %s\n", *join)
		wcfg := dispatch.WorkerConfig{
			Coordinator:   *join,
			Name:          name,
			Capacity:      *capacity,
			Simulate:      srv.RunJob,
			SimulateBatch: srv.RunJobs,
			Lockstep:      *lockstep,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "rfserved: "+format+"\n", args...)
			},
		}
		if st != nil {
			// Advertise this node's object API so a sharding coordinator
			// can read misses straight from our store. The bound address
			// must be reachable from the coordinator (bind a routable
			// -addr, not a wildcard, when the fleet spans hosts).
			wcfg.ObjectsURL = "http://" + bound
			wcfg.Inventory = st.ShardInventory
		}
		go func() {
			workerDone <- dispatch.RunWorker(ctx, wcfg)
		}()
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rfserved: shutting down")
	case err := <-workerDone:
		// The worker loop only returns early on a permanent registration
		// failure; without a fleet connection this process is useless.
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
	case err := <-errc:
		fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Scheduler first: canceling the sweeps is what unblocks any
	// connected NDJSON streamers (their sweeps reach a terminal state),
	// so the HTTP drain that follows can actually finish.
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rfserved: scheduler shutdown: %v\n", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "rfserved: http shutdown: %v\n", err)
	}
	// Tier replication drains before the local store flushes its index.
	if tiers != nil {
		tiers.Close()
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rfserved: store close: %v\n", err)
		}
	}
	// Journals close last, after the scheduler and dispatcher have
	// written their final records.
	for _, j := range []*wal.WAL{coordWAL, serverWAL} {
		if j != nil {
			if err := j.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "rfserved: journal close: %v\n", err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rfserved: %v\n", err)
	os.Exit(1)
}
