// Command rfexp regenerates the paper's tables and figures.
//
// Usage:
//
//	rfexp [-n instructions] [-fig 1,2,3,5,6,7,8,9] [-table 1,2]
//	rfexp -all
//
// With no selection flags, -all is assumed. Output is the textual data of
// each figure (the same rows/series the paper plots) with the paper's
// published deltas quoted inline for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/rf"
)

func main() {
	var (
		n       = flag.Uint64("n", 120000, "dynamic instructions per benchmark")
		figs    = flag.String("fig", "", "comma-separated figure numbers (1,2,3,5,6,7,8,9)")
		tables  = flag.String("table", "", "comma-separated table numbers (1,2)")
		all     = flag.Bool("all", false, "run every table and figure")
		ablate  = flag.Bool("ablate", false, "also run the extension/ablation studies")
		version = flag.Bool("version", false, "print the module version and API schema version, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("rfexp %s (schema %d)\n", rf.ModuleVersion(), rf.SchemaVersion)
		return
	}

	// One runner for the whole invocation: configurations shared between
	// figures (the 1-cycle baseline recurs in Figures 2, 6 and 8, the
	// paper cache in Figures 5, 6 and 7) are simulated once.
	runner := sweep.NewRunner(sweep.RunnerConfig{})
	opt := experiments.Options{Instructions: *n, Runner: runner}
	w := os.Stdout

	wantFig := map[string]bool{}
	wantTab := map[string]bool{}
	if *all || (*figs == "" && *tables == "" && !*ablate) {
		for _, f := range []string{"1", "2", "3", "5", "6", "7", "8", "9"} {
			wantFig[f] = true
		}
		wantTab["1"], wantTab["2"] = true, true
	}
	for _, f := range strings.Split(*figs, ",") {
		if f != "" {
			wantFig[strings.TrimSpace(f)] = true
		}
	}
	for _, t := range strings.Split(*tables, ",") {
		if t != "" {
			wantTab[strings.TrimSpace(t)] = true
		}
	}

	start := time.Now()
	if wantTab["1"] {
		experiments.Table1(w)
	}
	if wantTab["2"] {
		experiments.Table2(w)
	}
	if wantFig["1"] {
		experiments.Fig1(opt).Render(w)
	}
	if wantFig["2"] {
		experiments.Fig2(opt).Render(w)
	}
	if wantFig["3"] {
		experiments.Fig3(opt).Render(w)
	}
	if wantFig["5"] {
		experiments.Fig5(opt).Render(w)
	}
	if wantFig["6"] {
		experiments.Fig6(opt).Render(w)
	}
	if wantFig["7"] {
		experiments.Fig7(opt).Render(w)
	}
	if wantFig["8"] {
		experiments.Fig8(opt).Render(w)
	}
	if wantFig["9"] {
		experiments.Fig9(opt).Render(w)
	}
	if *ablate {
		experiments.Ablations(opt).Render(w)
	}
	st := runner.CacheStats()
	fmt.Fprintf(w, "\n[%d instructions/benchmark, %d simulations (%d cache hits), total wall time %s]\n",
		*n, st.Misses, st.Hits, time.Since(start).Round(time.Millisecond))
}
