// Command rftrace captures, characterizes, and replays workload traces.
//
// Usage:
//
//	rftrace -bench swim -n 100000 -capture swim.trace   # serialize a workload
//	rftrace -replay swim.trace -rf rfcache              # simulate a capture
//	rftrace -bench swim -n 100000 -characterize         # workload report
//
// Captures use the compact binary format of internal/trace (≈6 bytes per
// instruction) and replay bit-identically, so externally produced traces in
// the same format can also be fed to the simulator.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		bench   = flag.String("bench", "compress", "benchmark to generate")
		n       = flag.Uint64("n", 100000, "instructions to capture/characterize")
		capture = flag.String("capture", "", "write a binary trace to this file")
		replay  = flag.String("replay", "", "simulate a previously captured trace")
		charact = flag.Bool("characterize", false, "print a workload characterization report")
		rf      = flag.String("rf", "rfcache", "architecture for -replay: 1cycle|rfcache")
	)
	flag.Parse()

	switch {
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var spec sim.RFSpec
		switch *rf {
		case "1cycle":
			spec = sim.Mono1Cycle(core.Unlimited, core.Unlimited)
		case "rfcache":
			spec = sim.PaperCache()
		default:
			fatal(fmt.Errorf("unknown architecture %q", *rf))
		}
		// Size the run safely inside the capture: the reader panics past
		// the end, so the caller must pass -n within the captured length.
		res := sim.New(sim.DefaultConfig(spec, *n), r).Run()
		fmt.Printf("replayed %d instructions: %s\n", r.Count(), res.String())

	case *capture != "":
		prof, ok := trace.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		f, err := os.Create(*capture)
		if err != nil {
			fatal(err)
		}
		if err := trace.Capture(f, trace.New(prof), *n); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*capture)
		fmt.Printf("captured %d instructions of %s to %s (%.1f bytes/instruction)\n",
			*n, *bench, *capture, float64(st.Size())/float64(*n))

	case *charact:
		prof, ok := trace.ByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		c := trace.Characterize(trace.New(prof), *n)
		fmt.Printf("workload %s:\n%s", *bench, c.String())

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rftrace:", err)
	os.Exit(1)
}
