package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/warehouse"
	"repro/rf"
	"repro/rf/api"
	"repro/rf/client"
)

// runQuery evaluates a warehouse query document and writes the result
// document to stdout. With -remote the server evaluates it over its
// warehouse (/v1/query, cursor pages merged client-side); otherwise the
// same evaluator runs here, over a saved NDJSON row stream re-expanded
// against its spec. Both paths produce byte-identical output for the
// same rows — that equivalence is what makes the server-side answer
// trustworthy without re-streaming a single row.
func runQuery(queryPath, remote, apiKey, fromPath, specPath, sweepID string, asCSV, asTable bool) error {
	doc, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := warehouse.ParseQuery(doc)
	if err != nil {
		return err
	}
	if sweepID != "" {
		q.Sweep = sweepID
	}

	var res *api.QueryResult
	if remote != "" {
		res, err = queryRemote(remote, apiKey, q)
	} else {
		res, err = queryLocal(fromPath, specPath, sweepID, q)
	}
	if err != nil {
		return err
	}

	switch {
	case asCSV:
		return writeQueryCSV(os.Stdout, q, res)
	case asTable:
		return writeQueryTable(os.Stdout, res)
	default:
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(os.Stdout, "%s\n", out)
		return err
	}
}

// queryRemote evaluates the query on an rfserved warehouse, walking the
// cursor pages and merging them into one document.
func queryRemote(base, apiKey string, q *api.Query) (*api.QueryResult, error) {
	opts := []client.Option{client.WithLogf(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rfbatch: "+format+"\n", args...)
	})}
	if apiKey != "" {
		opts = append(opts, client.WithAPIKey(apiKey))
	}
	cl := client.New(base, opts...)
	var merged *api.QueryResult
	err := cl.QueryPages(context.Background(), q, func(page *api.QueryResult) error {
		merged = mergeQueryPage(merged, page)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// queryLocal evaluates the query over a saved NDJSON row stream (-from),
// re-expanded against its sweep spec so every derived column — family,
// dimensions, area — is recomputed exactly as the server computes it.
// The segment is labeled with -sweep so row documents match a remote
// evaluation of the same sweep byte for byte. Pagination runs the same
// cursor loop the remote path walks, for the same reason.
func queryLocal(fromPath, specPath, sweepID string, q *api.Query) (*api.QueryResult, error) {
	if fromPath == "" || specPath == "" {
		return nil, fmt.Errorf("local query mode needs -from rows.ndjson and -spec sweep.json (or use -remote)")
	}
	sf, err := os.Open(specPath)
	if err != nil {
		return nil, err
	}
	spec, err := rf.ParseSpec(sf)
	sf.Close()
	if err != nil {
		return nil, err
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	rfile, err := os.Open(fromPath)
	if err != nil {
		return nil, err
	}
	rows, err := rf.ReadRows(rfile)
	rfile.Close()
	if err != nil {
		return nil, err
	}
	seg, err := warehouse.SegmentFromRows(sweepID, spec.Name, jobs, rows)
	if err != nil {
		return nil, err
	}

	var merged *api.QueryResult
	page := *q
	for {
		res, err := warehouse.Eval([]*warehouse.Segment{seg}, &page)
		if err != nil {
			return nil, err
		}
		merged = mergeQueryPage(merged, res)
		if res.NextCursor == "" {
			return merged, nil
		}
		page.Cursor = res.NextCursor
	}
}

// mergeQueryPage folds one result page into the merged document. Only
// the rows op paginates, so later pages contribute rows; every page
// restates the full matched count. The merged document never carries a
// cursor.
func mergeQueryPage(merged, page *api.QueryResult) *api.QueryResult {
	if merged == nil {
		cp := *page
		cp.NextCursor = ""
		return &cp
	}
	merged.Rows = append(merged.Rows, page.Rows...)
	merged.Matched = page.Matched
	return merged
}

// fmtF renders a float for CSV without padding or precision loss.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeQueryCSV renders any query result as CSV, one record shape per
// op.
func writeQueryCSV(w io.Writer, q *api.Query, res *api.QueryResult) error {
	cw := csv.NewWriter(w)
	switch res.Op {
	case api.QueryOpRows:
		cw.Write([]string{"sweep", "benchmark", "arch", "family", "fp", "seed",
			"instructions", "cycles", "ipc", "mispredict_rate", "icache_miss_rate", "dcache_miss_rate", "area", "key"})
		for _, r := range res.Rows {
			cw.Write([]string{
				r.Sweep, r.Benchmark, r.Arch, r.Family, strconv.FormatBool(r.FP),
				strconv.FormatUint(r.Seed, 10),
				strconv.FormatUint(r.Instructions, 10), strconv.FormatUint(r.Cycles, 10),
				fmtF(r.IPC), fmtF(r.MispredRate), fmtF(r.ICacheMiss), fmtF(r.DCacheMiss),
				fmtF(r.Area), r.Key,
			})
		}
	case api.QueryOpAggregate:
		// Value columns in sorted name order: deterministic regardless of
		// the metric list's order in the query document.
		names := map[string]bool{}
		for _, g := range res.Groups {
			for n := range g.Values {
				names[n] = true
			}
		}
		vals := make([]string, 0, len(names))
		for n := range names {
			vals = append(vals, n)
		}
		sort.Strings(vals)
		cw.Write(append(append(append([]string{}, q.GroupBy...), "count"), vals...))
		for _, g := range res.Groups {
			rec := append(append([]string{}, g.Key...), strconv.Itoa(g.Count))
			for _, n := range vals {
				rec = append(rec, fmtF(g.Values[n]))
			}
			cw.Write(rec)
		}
	case api.QueryOpSeries:
		cw.Write([]string{"arch", "benchmark", "ipc"})
		for _, s := range res.Series {
			for _, p := range s.Points {
				cw.Write([]string{s.Arch, p.Benchmark, fmtF(p.IPC)})
			}
			if s.IntHmean > 0 {
				cw.Write([]string{s.Arch, "hmean_int", fmtF(s.IntHmean)})
			}
			if s.FPHmean > 0 {
				cw.Write([]string{s.Arch, "hmean_fp", fmtF(s.FPHmean)})
			}
		}
	case api.QueryOpPareto:
		cw.Write([]string{"arch", "ipc", "area"})
		for _, p := range res.Frontier {
			cw.Write([]string{p.Arch, fmtF(p.IPC), fmtF(p.Area)})
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeQueryTable renders a query result as a fixed-width text table in
// the style of the paper's figures — a series result comes out as the
// benchmark × architecture IPC grid of Figure 6, harmonic-mean rows
// included.
func writeQueryTable(w io.Writer, res *api.QueryResult) error {
	switch res.Op {
	case api.QueryOpSeries:
		cols := []string{"benchmark"}
		for _, s := range res.Series {
			cols = append(cols, s.Arch)
		}
		tab := rf.NewTable(cols...)
		// Benchmarks in first-appearance order across the series; every
		// series of one sweep shares the suite order, so this is just the
		// suite order restricted to what matched.
		var benches []string
		seen := map[string]int{}
		ipc := make([]map[string]float64, len(res.Series))
		for i, s := range res.Series {
			ipc[i] = map[string]float64{}
			for _, p := range s.Points {
				if _, ok := seen[p.Benchmark]; !ok {
					seen[p.Benchmark] = len(benches)
					benches = append(benches, p.Benchmark)
				}
				ipc[i][p.Benchmark] = p.IPC
			}
		}
		for _, b := range benches {
			cells := []string{b}
			for i := range res.Series {
				cells = append(cells, fmt.Sprintf("%.3f", ipc[i][b]))
			}
			tab.AddRow(cells...)
		}
		hm := func(label string, pick func(api.QuerySeries) float64) {
			any := false
			cells := []string{label}
			for _, s := range res.Series {
				v := pick(s)
				if v > 0 {
					any = true
				}
				cells = append(cells, fmt.Sprintf("%.3f", v))
			}
			if any {
				tab.AddRow(cells...)
			}
		}
		hm("Hmean(Int)", func(s api.QuerySeries) float64 { return s.IntHmean })
		hm("Hmean(FP)", func(s api.QuerySeries) float64 { return s.FPHmean })
		_, err := fmt.Fprint(w, tab.String())
		return err
	case api.QueryOpPareto:
		tab := rf.NewTable("arch", "ipc", "area")
		for _, p := range res.Frontier {
			tab.AddRow(p.Arch, fmt.Sprintf("%.3f", p.IPC), fmt.Sprintf("%.3f", p.Area))
		}
		_, err := fmt.Fprint(w, tab.String())
		return err
	case api.QueryOpAggregate:
		names := map[string]bool{}
		for _, g := range res.Groups {
			for n := range g.Values {
				names[n] = true
			}
		}
		vals := make([]string, 0, len(names))
		for n := range names {
			vals = append(vals, n)
		}
		sort.Strings(vals)
		tab := rf.NewTable(append([]string{"group", "count"}, vals...)...)
		for _, g := range res.Groups {
			rec := []string{joinKey(g.Key), strconv.Itoa(g.Count)}
			for _, n := range vals {
				rec = append(rec, fmt.Sprintf("%.3f", g.Values[n]))
			}
			tab.AddRow(rec...)
		}
		_, err := fmt.Fprint(w, tab.String())
		return err
	default:
		return fmt.Errorf("-table renders aggregate, series and pareto results; use -csv or JSON for %q", res.Op)
	}
}

func joinKey(key []string) string {
	out := ""
	for i, k := range key {
		if i > 0 {
			out += "/"
		}
		out += k
	}
	return out
}
