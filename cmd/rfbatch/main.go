// Command rfbatch runs a user-defined sweep matrix — benchmark ×
// architecture × ports × policy — from a JSON specification, through the
// cached parallel sweep engine (the public rf package).
//
// Usage:
//
//	rfbatch -spec sweep.json [-n instructions] [-p parallelism]
//	        [-lockstep width] [-csv | -ndjson]
//	        [-store dir [-store-max-mb n]]
//	        [-store-remote url,... [-store-shards n]] [-v]
//	rfbatch -spec sweep.json -remote http://coordinator:8090 [-api-key k]
//	        [-csv | -ndjson]
//	rfbatch -query q.json -remote http://coordinator:8090 [-sweep id]
//	        [-csv | -table]
//	rfbatch -query q.json -from rows.ndjson -spec sweep.json [-sweep id]
//	        [-csv | -table]
//	rfbatch -example
//	rfbatch -version
//
// With -remote, the sweep runs on an rfserved instance (typically a
// -dispatch coordinator fronting a worker fleet) instead of this
// machine: the spec is submitted through the rf/client SDK and the
// result stream is reassembled into the same JSON/CSV/NDJSON report a
// local run emits. Results the coordinator's store already holds cost
// zero simulations. Against a multi-tenant server, -api-key (or the
// RF_API_KEY environment variable) authenticates the submission.
//
// With -query, rfbatch evaluates a warehouse query document — filtered
// row pages, grouped aggregates, Pareto frontiers, or per-architecture
// figure series — instead of running a sweep. Against -remote the
// server's columnar warehouse answers (GET/POST /v1/query) and no row
// ever streams; locally the same evaluator runs over a saved NDJSON
// row stream (-from) re-expanded against its spec. The two paths emit
// byte-identical documents for the same rows, so a server-side figure
// can be checked against a local re-aggregation at any time. -table
// renders a series result as the benchmark × architecture IPC grid of
// the paper's figures.
//
// Jobs that share a workload (benchmark, budget, seed) run in lockstep by
// default: one trace pass drives up to 16 register file configurations at
// once, which removes the per-configuration trace generation and branch
// prediction work without changing a single output byte. -lockstep caps
// the batch width; -lockstep 1 restores the sequential one-trace-per-run
// path.
//
// The report (one row per run, plus cache hit/miss totals) is written to
// stdout as JSON, as CSV with -csv, or as NDJSON (one row per line, the
// exact format the rfserved service streams) with -ndjson. Repeated
// configurations — across architectures, or across repeated sweeps in one
// process — are simulated once and reported with "cached": true.
//
// With -store, results are additionally persisted in a disk-backed
// content-addressed store (internal/store), so repeating a batch — or
// re-running it after a crash, or sharing the store directory with an
// rfserved instance — resumes from previous results instead of
// recomputing them. -store-remote adds remote tiers on top: rfserved
// object APIs (comma-separated) consulted with hedged fetches on a
// local miss, so a batch run can reuse a fleet's accumulated results
// without submitting to it. Remote hits are promoted into the local
// store (when -store is set) and local writes replicate back
// asynchronously; -store-shards rendezvous-routes keys across several
// remotes. RF_API_KEY (or -api-key) authenticates the tier requests.
//
// An example specification (print it with -example):
//
//	{
//	  "schema": 1,
//	  "name": "ports-x-policy",
//	  "instructions": 60000,
//	  "benchmarks": ["compress", "swim"],
//	  "architectures": [
//	    {"kind": "1cycle", "read_ports": [4, 6], "write_ports": [3]},
//	    {"kind": "rfcache", "read_ports": [4], "write_ports": [3],
//	     "buses": [2], "caching": ["nonbypass", "ready"]}
//	  ]
//	}
//
// Every architecture entry expands to the cross product of its dimension
// lists; empty lists default to a single family-appropriate value (0 ports
// meaning unlimited). Empty "benchmarks" runs all 18 SPEC95 proxies. The
// "schema" stamp is optional and defaults to the current version;
// architecture kinds resolve through the rf family registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/store"
	"repro/rf"
	"repro/rf/client"
)

const exampleSpec = `{
  "schema": 1,
  "name": "ports-x-policy",
  "instructions": 60000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle", "read_ports": [4, 6], "write_ports": [3]},
    {"kind": "rfcache", "read_ports": [4], "write_ports": [3],
     "buses": [2], "caching": ["nonbypass", "ready"]}
  ]
}
`

func main() {
	var (
		specPath   = flag.String("spec", "", "JSON sweep specification (required; see -example)")
		n          = flag.Uint64("n", 0, "override the spec's per-run instruction budget")
		par        = flag.Int("p", 0, "override the spec's parallelism bound")
		lockstep   = flag.Int("lockstep", 0, "lockstep batch width: 0 groups up to 16 same-workload configurations per trace pass, 1 disables grouping, n caps batches at n (results are identical either way)")
		asCSV      = flag.Bool("csv", false, "emit CSV instead of JSON")
		asNDJSON   = flag.Bool("ndjson", false, "emit NDJSON rows (the rfserved stream format) instead of JSON")
		storeDir   = flag.String("store", "", "persist results in this disk-backed store directory; repeated runs resume instead of recomputing")
		storeMaxMB = flag.Int64("store-max-mb", 0, "store size cap in MiB before LRU eviction (0: unlimited)")
		storeRem   = flag.String("store-remote", "", "comma-separated rfserved base URLs consulted as remote store tiers on a local miss (hedged)")
		storeShard = flag.Int("store-shards", 0, "rendezvous-route keys across several -store-remote tiers with this shard-bucket count (0: flag order)")
		remote     = flag.String("remote", "", "submit the sweep to this rfserved URL instead of simulating locally")
		apiKey     = flag.String("api-key", "", "tenant API key for -remote against a multi-tenant server (also: RF_API_KEY)")
		queryPath  = flag.String("query", "", "evaluate this warehouse query document instead of running a sweep: server-side with -remote, else locally over -from rows against -spec")
		fromPath   = flag.String("from", "", "query mode: saved NDJSON row stream (an -ndjson report or rfserved results stream) to aggregate locally")
		sweepID    = flag.String("sweep", "", "query mode: sweep id — filters the remote warehouse / labels the local rows, so both sides emit identical documents")
		asTable    = flag.Bool("table", false, "query mode: render the result as a fixed-width figure-style table")
		verbose    = flag.Bool("v", false, "print per-run progress to stderr")
		example    = flag.Bool("example", false, "print an example spec and exit")
		version    = flag.Bool("version", false, "print the module version and API schema version, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("rfbatch %s (schema %d)\n", rf.ModuleVersion(), rf.SchemaVersion)
		return
	}
	if *example {
		fmt.Print(exampleSpec)
		return
	}
	if *queryPath != "" {
		if *asNDJSON {
			fmt.Fprintln(os.Stderr, "rfbatch: -ndjson does not apply to -query (results are documents, not row streams)")
			os.Exit(2)
		}
		if *asCSV && *asTable {
			fmt.Fprintln(os.Stderr, "rfbatch: -csv and -table are mutually exclusive")
			os.Exit(2)
		}
		key := *apiKey
		if key == "" {
			key = os.Getenv("RF_API_KEY")
		}
		if err := runQuery(*queryPath, *remote, key, *fromPath, *specPath, *sweepID, *asCSV, *asTable); err != nil {
			fatal(err)
		}
		return
	}
	if *fromPath != "" || *sweepID != "" || *asTable {
		fmt.Fprintln(os.Stderr, "rfbatch: -from/-sweep/-table apply only to -query mode")
		os.Exit(2)
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rfbatch: -spec is required (see -example)")
		os.Exit(2)
	}
	if *asCSV && *asNDJSON {
		fmt.Fprintln(os.Stderr, "rfbatch: -csv and -ndjson are mutually exclusive")
		os.Exit(2)
	}
	if *remote != "" && (*storeDir != "" || *storeRem != "") {
		fmt.Fprintln(os.Stderr, "rfbatch: -store/-store-remote do not apply to -remote runs (the service owns the store)")
		os.Exit(2)
	}

	f, err := os.Open(*specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := rf.ParseSpec(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *n > 0 {
		spec.Instructions = *n
	}
	if *par > 0 {
		spec.Parallelism = *par
	}

	if *remote != "" {
		key := *apiKey
		if key == "" {
			key = os.Getenv("RF_API_KEY")
		}
		if err := runRemote(*remote, key, spec, *asCSV, *asNDJSON); err != nil {
			fatal(err)
		}
		return
	}

	jobs, err := spec.Jobs()
	if err != nil {
		fatal(err)
	}

	cfg := rf.RunnerConfig{Parallelism: spec.Parallelism, Lockstep: *lockstep}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxMB << 20})
		if err != nil {
			fatal(err)
		}
	}
	var tiers *store.Tiers
	if *storeRem != "" {
		key := *apiKey
		if key == "" {
			key = os.Getenv("RF_API_KEY")
		}
		ropts := store.RemoteOptions{APIKey: key}
		var remotes []store.Tier
		for _, u := range strings.Split(*storeRem, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			remotes = append(remotes, store.Tier{
				Name: "remote", ID: u,
				Backend:      store.NewRemote(u, ropts),
				WriteThrough: true,
			})
		}
		tiers = store.NewTiers(store.TierConfig{
			Local: st, Remotes: remotes, Shards: *storeShard,
		})
		cfg.Cache = rf.Tiered(rf.NewMemCache(), tiers)
	} else if st != nil {
		cfg.Cache = rf.Tiered(rf.NewMemCache(), st)
	}
	if *verbose {
		cfg.OnProgress = func(p rf.Progress) {
			tag := ""
			if p.Cached {
				tag = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s × %s%s\n",
				p.Done, p.Total, p.Job.Profile.Name, p.Job.Config.RF.Name, tag)
		}
	}
	runner := rf.NewRunner(cfg)
	outs := runner.RunOutcomes(jobs, 0)
	rep := rf.NewReport(spec.Name, jobs, outs, runner.CacheStats())

	switch {
	case *asCSV:
		err = rep.WriteCSV(os.Stdout)
	case *asNDJSON:
		err = rep.WriteNDJSON(os.Stdout)
	default:
		err = rep.WriteJSON(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	stc := rep.Cache
	fmt.Fprintf(os.Stderr, "rfbatch: %d runs (%d simulated, %d cache hits)\n",
		len(rep.Rows), stc.Misses, stc.Hits)
	if tiers != nil {
		ts := tiers.Stats()
		fmt.Fprintf(os.Stderr, "rfbatch: remote tiers: %d hits, %d hedged (%d wins), %d errors\n",
			ts.Hits["remote"], ts.HedgedFetches, ts.HedgeWins, ts.RemoteErrors)
		tiers.Close()
	}
	if st != nil {
		entries, bytes := st.Len(), st.SizeBytes()
		if err := st.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rfbatch: store %s holds %d results (%.1f MiB)\n",
			*storeDir, entries, float64(bytes)/(1<<20))
	}
}

// runRemote submits the spec to an rfserved instance through rf/client,
// streams the result rows, and emits the same report a local run would.
// The NDJSON form is a verbatim copy of the service stream
// (byte-identical to a local -ndjson run of the same spec); JSON and CSV
// are reassembled from it via rf.ReadRows. The client survives a
// mid-stream disconnect by falling back to status polling and resuming
// the stream.
func runRemote(base, apiKey string, spec *rf.Spec, asCSV, asNDJSON bool) error {
	ctx := context.Background()
	opts := []client.Option{client.WithLogf(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rfbatch: "+format+"\n", args...)
	})}
	if apiKey != "" {
		opts = append(opts, client.WithAPIKey(apiKey))
	}
	cl := client.New(base, opts...)
	ack, err := cl.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("%s rejected the sweep: %w", cl.BaseURL(), err)
	}
	fmt.Fprintf(os.Stderr, "rfbatch: sweep %s (%d jobs) running on %s\n", ack.ID, ack.Jobs, cl.BaseURL())

	var rep *rf.Report
	switch {
	case asNDJSON:
		if err := cl.StreamResults(ctx, ack.ID, os.Stdout); err != nil {
			return err
		}
	default:
		// Decode rows as they stream instead of buffering the raw NDJSON:
		// the pipe's write end carries the stream (with the client's
		// mid-stream resume intact), the read end feeds the decoder.
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(cl.StreamResults(ctx, ack.ID, pw))
		}()
		rows, err := rf.ReadRows(pr)
		pr.Close()
		if err != nil {
			return err
		}
		rep = &rf.Report{Name: spec.Name, Rows: rows}
	}

	// The status document carries the completion counts for the summary
	// (and, for reassembled reports, the cache section). A sweep that did
	// not verifiably end in "done" — including a status fetch that fails
	// outright — must fail the run: a truncated stream is otherwise
	// indistinguishable from success.
	st, err := cl.Status(ctx, ack.ID)
	if err != nil {
		return fmt.Errorf("fetching status of sweep %s: %w", ack.ID, err)
	}
	if st.State != "done" {
		return fmt.Errorf("sweep %s ended %q (%d/%d jobs completed)",
			ack.ID, st.State, st.Completed, st.Total)
	}

	if rep != nil {
		rep.Cache = rf.CacheStats{Hits: uint64(st.Cached), Misses: uint64(st.Simulated)}
		if asCSV {
			err = rep.WriteCSV(os.Stdout)
		} else {
			err = rep.WriteJSON(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "rfbatch: %d runs (%d simulated, %d cache hits) on %s\n",
		st.Completed, st.Simulated, st.Cached, cl.BaseURL())
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rfbatch: %v\n", err)
	os.Exit(1)
}
