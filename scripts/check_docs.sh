#!/usr/bin/env bash
# check_docs.sh — fail CI when the prose drifts from the code.
#
# Checks, over README.md and docs/ARCHITECTURE.md:
#   1. every relative markdown link target exists;
#   2. every package path named in the text (internal/..., rf/...,
#      cmd/..., examples/..., scripts/...) exists on disk;
#   3. every "command -flag" pair named in the text (e.g. `rfbatch
#      -lockstep`, `rfserved -store`) is a flag the command actually
#      defines;
#   4. every Go test or benchmark name mentioned (TestFoo/BenchmarkBar/
#      FuzzBaz) exists in some _test.go file.
#
# Run from the repository root: bash scripts/check_docs.sh
set -u
cd "$(dirname "$0")/.."

DOCS="README.md docs/ARCHITECTURE.md"
fail=0

err() {
  echo "check_docs: $*" >&2
  fail=1
}

for doc in $DOCS; do
  [ -f "$doc" ] || { err "$doc does not exist"; continue; }

  # 1. Relative markdown links: [text](target) that are not URLs or
  # in-page anchors must resolve relative to the doc's directory.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|\#*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$(dirname "$doc")/$path" ] && [ ! -e "$path" ]; then
      err "$doc links to missing file: $target"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

  # 2. Package paths named in the text must exist as directories (or
  # files, for direct file references like internal/sweep/fuzz_test.go).
  while IFS= read -r pkg; do
    pkg="${pkg%/}"
    if [ ! -e "$pkg" ]; then
      err "$doc names nonexistent path: $pkg"
    fi
  done < <(grep -oE '\b(internal|cmd|examples|scripts|rf|docs)/[A-Za-z0-9_./-]+' "$doc" \
             | sed -E 's/[.,;:]+$//; s/\.[A-Z][A-Za-z0-9]*$//' | sort -u)

  # 3. "command -flag" pairs: the flag must be defined in the command's
  # source (flag.Type("name", ...)). Covers prose and code blocks alike.
  while IFS= read -r pair; do
    cmdname="${pair%% *}"
    flagname="${pair##* -}"
    dir="cmd/$cmdname"
    [ -d "$dir" ] || continue # path existence handled above
    # Strip a trailing = or value remnants, keep the bare flag word.
    flagname="${flagname%%=*}"
    if ! grep -qE "\"$flagname\"" "$dir"/*.go; then
      err "$doc says '$pair' but cmd/$cmdname defines no -$flagname flag"
    fi
  done < <(grep -oE '\b(rfbatch|rfserved|rfsim|rfexp|rftrace|benchgate) -[a-z][a-z0-9-]*' $doc \
             | sed -E 's/.*(rfbatch|rfserved|rfsim|rfexp|rftrace|benchgate) -/\1 -/' | sort -u)

  # 4. Test/benchmark/fuzz names must exist somewhere in _test.go files.
  while IFS= read -r name; do
    if ! grep -rqE "func $name\(" --include='*_test.go' .; then
      err "$doc mentions $name but no _test.go defines it"
    fi
  done < <(grep -oE '\b(Test|Benchmark|Fuzz)[A-Z][A-Za-z0-9]+' "$doc" | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: documentation references are stale (see above)" >&2
  exit 1
fi
echo "check_docs: all references in $DOCS resolve"
