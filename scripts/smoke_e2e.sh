#!/usr/bin/env bash
# End-to-end smoke test for the rfserved sweep service. CI runs this on
# every PR; it also runs locally (bash scripts/smoke_e2e.sh).
#
# It proves the five service-level guarantees:
#   1. The NDJSON stream of a submitted sweep is byte-identical to an
#      `rfbatch -ndjson` run of the same spec.
#   2. Resubmitting the spec to the same server performs zero simulations
#      (100% cache hits).
#   3. The disk store survives a server restart: a fresh process over the
#      same store directory still serves the sweep entirely from cache.
#   4. A 1-coordinator/2-worker fleet over a fresh store streams the
#      same bytes as single-node rfserved (every job executed remotely),
#      and resubmitting to the coordinator is 100% warm cache hits.
#   5. Multi-tenant admission: wrong keys get 401, an over-quota tenant
#      gets 429 + Retry-After while another tenant's sweep streams the
#      same bytes as rfbatch, anonymous callers still work, and /metrics
#      grows per-tenant rows.
#
# Requires: go, curl, jq.
set -euo pipefail

work="$(mktemp -d)"
bin="$work/bin"
storedir="$work/store"
mkdir -p "$bin"
server_pid=""
fleet_pids=""

cleanup() {
  for pid in $fleet_pids $server_pid; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$work"
}
trap cleanup EXIT

die() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building rfbatch and rfserved"
go build -o "$bin/rfbatch" ./cmd/rfbatch
go build -o "$bin/rfserved" ./cmd/rfserved

echo "smoke: -version must print the API schema version"
"$bin/rfbatch" -version | grep -q "schema 1" \
  || die "rfbatch -version missing schema stamp: $("$bin/rfbatch" -version)"
"$bin/rfserved" -version | grep -q "schema 1" \
  || die "rfserved -version missing schema stamp: $("$bin/rfserved" -version)"

cat > "$work/spec.json" <<'EOF'
{
  "name": "smoke",
  "instructions": 5000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}
EOF

# start_server [extra rfserved flags...]
start_server() {
  rm -f "$work/addr"
  "$bin/rfserved" -addr 127.0.0.1:0 -addr-file "$work/addr" "$@" \
    2>> "$work/rfserved.log" &
  server_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$work/rfserved.log" >&2; die "rfserved died at startup"; }
    sleep 0.1
  done
  [ -s "$work/addr" ] || die "rfserved never wrote its address file"
  base="http://$(cat "$work/addr")"
}

stop_server() {
  kill "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

# submit <outfile-prefix>: POST the spec, stream results, fetch status.
submit() {
  local prefix="$1"
  local ack
  ack="$(curl -sfS -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
  local id results
  id="$(echo "$ack" | jq -r .id)"
  results="$(echo "$ack" | jq -r .results_url)"
  [ -n "$id" ] && [ "$id" != null ] || die "submission not acknowledged: $ack"
  # The stream blocks until the sweep finishes, then holds every row.
  curl -sfS "$base$results" > "$work/$prefix.ndjson"
  curl -sfS "$base/v1/sweeps/$id" > "$work/$prefix.status"
}

echo "smoke: starting rfserved (fresh store)"
start_server -store "$storedir"

echo "smoke: /v1/version must advertise schema 1"
curl -sfS "$base/v1/version" | jq -e '.schema == 1 and (.module | length) > 0' > /dev/null \
  || die "/v1/version wrong: $(curl -sfS "$base/v1/version")"

echo "smoke: 1/5 streamed rows must be byte-identical to rfbatch"
submit cold
"$bin/rfbatch" -spec "$work/spec.json" -ndjson > "$work/rfbatch.ndjson" 2> "$work/rfbatch.log"
if ! cmp -s "$work/cold.ndjson" "$work/rfbatch.ndjson"; then
  diff -u "$work/rfbatch.ndjson" "$work/cold.ndjson" >&2 || true
  die "rfserved stream differs from rfbatch output"
fi
rows="$(wc -l < "$work/cold.ndjson")"
[ "$rows" -eq 6 ] || die "expected 6 result rows, got $rows"
echo "smoke:     $rows rows identical"

echo "smoke: 2/5 resubmission must be 100% cache hits"
submit warm
jq -e '.state == "done" and .cached == .total and .simulated == 0' \
  "$work/warm.status" > /dev/null \
  || die "resubmission was not fully cached: $(cat "$work/warm.status")"
echo "smoke:     $(jq -r .cached "$work/warm.status")/$(jq -r .total "$work/warm.status") rows from cache"

echo "smoke: 3/5 store must survive a server restart"
stop_server
start_server -store "$storedir"
submit restart
jq -e '.state == "done" and .cached == .total and .simulated == 0' \
  "$work/restart.status" > /dev/null \
  || die "restarted server re-simulated: $(cat "$work/restart.status")"
# Rows after restart match the cold run except for cache provenance.
if ! cmp -s <(jq -c 'del(.cached)' "$work/cold.ndjson") \
            <(jq -c 'del(.cached)' "$work/restart.ndjson"); then
  die "rows changed across server restart"
fi
echo "smoke:     restarted server served $(jq -r .cached "$work/restart.status") rows from the disk store"

curl -sfS "$base/metrics" | grep -q '^rfserved_cache_hits_total' \
  || die "metrics endpoint missing cache counters"
stop_server

echo "smoke: 4/5 coordinator + 2 workers must match single-node byte-for-byte"
# A fresh store: every job must travel through the fleet, nothing is
# pre-warmed.
fleetstore="$work/fleetstore"
rm -f "$work/coord-addr"
"$bin/rfserved" -dispatch -lease-ms 3000 -addr 127.0.0.1:0 \
  -addr-file "$work/coord-addr" -store "$fleetstore" \
  2>> "$work/coordinator.log" &
fleet_pids="$fleet_pids $!"
for _ in $(seq 1 100); do
  [ -s "$work/coord-addr" ] && break
  sleep 0.1
done
[ -s "$work/coord-addr" ] || { cat "$work/coordinator.log" >&2; die "coordinator never wrote its address file"; }
coord="http://$(cat "$work/coord-addr")"

for i in 1 2; do
  "$bin/rfserved" -join "$coord" -worker-name "worker$i" -addr 127.0.0.1:0 \
    2>> "$work/worker$i.log" &
  fleet_pids="$fleet_pids $!"
done
for _ in $(seq 1 100); do
  n="$(curl -sfS "$coord/v1/workers" | jq '.workers | length')" || n=0
  [ "$n" = 2 ] && break
  sleep 0.1
done
[ "$n" = 2 ] || die "expected 2 registered workers, got $n"
echo "smoke:     2 workers registered"

# Drive the fleet through rfbatch -remote: submit, stream, reassemble.
"$bin/rfbatch" -spec "$work/spec.json" -remote "$coord" -ndjson \
  > "$work/fleet.ndjson" 2>> "$work/rfbatch-remote.log" \
  || { cat "$work/rfbatch-remote.log" >&2; die "rfbatch -remote failed"; }
if ! cmp -s "$work/fleet.ndjson" "$work/rfbatch.ndjson"; then
  diff -u "$work/rfbatch.ndjson" "$work/fleet.ndjson" >&2 || true
  die "fleet stream differs from single-node rfbatch output"
fi
echo "smoke:     $(wc -l < "$work/fleet.ndjson") rows identical to single-node"

metrics="$(curl -sfS "$coord/metrics")"
echo "$metrics" | grep -q '^rfserved_dispatch_fallbacks_total 0$' \
  || die "coordinator fell back to local simulation: $(echo "$metrics" | grep dispatch)"
echo "$metrics" | grep -q '^rfserved_dispatch_results_total 6$' \
  || die "fleet did not execute all 6 jobs remotely: $(echo "$metrics" | grep dispatch)"

base="$coord"
submit fleetwarm
jq -e '.state == "done" and .cached == .total and .simulated == 0' \
  "$work/fleetwarm.status" > /dev/null \
  || die "fleet resubmission was not fully cached: $(cat "$work/fleetwarm.status")"
echo "smoke:     resubmission served $(jq -r .cached "$work/fleetwarm.status")/$(jq -r .total "$work/fleetwarm.status") rows from the fleet-wide cache"

echo "smoke: 5/5 multi-tenant admission: keys, quotas, isolation"
# "small" can hold at most 3 unresolved jobs — the 6-job smoke spec is
# rejected deterministically. "big" has a rotated key pair and no limits.
cat > "$work/tenants.json" <<'EOF'
{
  "tenants": [
    {"name": "small", "key": "smoke-key-small", "max_queued": 3},
    {"name": "big", "keys": ["smoke-key-big", "smoke-key-big-rotated"]}
  ]
}
EOF
# A fresh store so big's stream is computed, not replayed from cache.
start_server -store "$work/tenantstore" -tenants "$work/tenants.json"

code="$(curl -sS -o "$work/t401.json" -w '%{http_code}' \
  -H 'X-RF-API-Key: bogus' -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
[ "$code" = 401 ] || die "wrong key got $code, want 401: $(cat "$work/t401.json")"
jq -e '.code == "unauthenticated"' "$work/t401.json" > /dev/null \
  || die "401 body missing code: $(cat "$work/t401.json")"
echo "smoke:     wrong key rejected with 401 unauthenticated"

code="$(curl -sS -o "$work/t429.json" -D "$work/t429.headers" -w '%{http_code}' \
  -H 'X-RF-API-Key: smoke-key-small' -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
[ "$code" = 429 ] || die "over-quota tenant got $code, want 429: $(cat "$work/t429.json")"
jq -e '.code == "over_quota" and .retry_after_ms > 0' "$work/t429.json" > /dev/null \
  || die "429 body wrong: $(cat "$work/t429.json")"
grep -qi '^retry-after:' "$work/t429.headers" \
  || die "429 response missing Retry-After header"
echo "smoke:     over-quota tenant rejected with 429 over_quota + Retry-After"

# The other tenant is unaffected: its sweep runs and streams the same
# bytes rfbatch produces (the rotated key must authenticate too).
ack="$(curl -sfS -H 'X-RF-API-Key: smoke-key-big-rotated' \
  -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
echo "$ack" | jq -e '.tenant == "big"' > /dev/null \
  || die "ack not stamped with tenant: $ack"
curl -sfS -H 'X-RF-API-Key: smoke-key-big' \
  "$base$(echo "$ack" | jq -r .results_url)" > "$work/tenant.ndjson"
if ! cmp -s "$work/tenant.ndjson" "$work/rfbatch.ndjson"; then
  diff -u "$work/rfbatch.ndjson" "$work/tenant.ndjson" >&2 || true
  die "tenanted stream differs from rfbatch output"
fi
echo "smoke:     big's $(wc -l < "$work/tenant.ndjson") rows identical to rfbatch"

# Result streams are owner-only: another tenant guessing the sequential
# sweep ID must get a 403, never big's rows.
code="$(curl -sS -o /dev/null -w '%{http_code}' -H 'X-RF-API-Key: smoke-key-small' \
  "$base$(echo "$ack" | jq -r .results_url)")"
[ "$code" = 403 ] || die "cross-tenant stream got $code, want 403"
echo "smoke:     cross-tenant result stream rejected with 403"

# Keyless callers still work (they are the anonymous tenant).
curl -sfS -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps" \
  | jq -e '.tenant == "anonymous"' > /dev/null \
  || die "anonymous submission failed against tenanted server"

metrics="$(curl -sfS "$base/metrics")"
echo "$metrics" | grep -q '^rfserved_tenant_active_sweeps{tenant="big"}' \
  || die "metrics missing per-tenant rows: $(echo "$metrics" | grep tenant || true)"
echo "$metrics" | grep -q '^rfserved_tenant_rejected_total{tenant="small"} 1$' \
  || die "small's rejection not counted: $(echo "$metrics" | grep tenant || true)"
echo "smoke:     per-tenant metrics rows present"
stop_server

echo "smoke: PASS"
