#!/usr/bin/env bash
# End-to-end smoke test for the rfserved sweep service. CI runs this on
# every PR; it also runs locally (bash scripts/smoke_e2e.sh).
#
# It proves the seven service-level guarantees:
#   1. The NDJSON stream of a submitted sweep is byte-identical to an
#      `rfbatch -ndjson` run of the same spec.
#   2. Resubmitting the spec to the same server performs zero simulations
#      (100% cache hits).
#   3. The disk store survives a server restart: a fresh process over the
#      same store directory still serves the sweep entirely from cache.
#   4. A 1-coordinator/2-worker fleet over a fresh store streams the
#      same bytes as single-node rfserved (every job executed remotely),
#      and resubmitting to the coordinator is 100% warm cache hits.
#   5. Multi-tenant admission: wrong keys get 401, an over-quota tenant
#      gets 429 + Retry-After while another tenant's sweep streams the
#      same bytes as rfbatch, anonymous callers still work, and /metrics
#      grows per-tenant rows.
#   6. Crash recovery: a coordinator SIGKILLed mid-sweep and restarted on
#      the same -wal-dir resumes the sweep, streams NDJSON byte-identical
#      to an uninterrupted run, and re-simulates zero completed jobs.
#   7. Sharded fleet store: workers keep results in their own stores and
#      advertise shard inventory; a fresh, storeless coordinator resolves
#      a resubmitted sweep 100% from peer-tier reads (zero simulations),
#      and a new node pointed at a dead peer first (-store-remote) still
#      completes the sweep byte-identically via hedged failover.
#   8. Result warehouse: a coordinator with -warehouse-dir answers
#      rfbatch -query (the Figure 6 series, pareto, aggregates)
#      byte-identically to a local re-aggregation of the streamed NDJSON
#      rows, and deleting the warehouse directory + restarting rebuilds
#      it from the content-addressed store with identical answers and
#      zero re-simulation.
#
# Usage: smoke_e2e.sh [phase...]   (default: all phases, in order)
# CI splits this into a smoke job (1 2 3 4 5 7 8) and a recovery job (6).
# Phases 2 and 3 build on phase 1's sweep and must run with it; phases 6,
# 7 and 8 are fully self-contained.
#
# On failure, logs and WAL directories are copied to $SMOKE_ARTIFACTS
# (when set) so CI can upload them.
#
# Requires: go, curl, jq.
set -euo pipefail

phases="${*:-1 2 3 4 5 6 7 8}"
want() { case " $phases " in *" $1 "*) return 0 ;; *) return 1 ;; esac }
for p in 2 3; do
  if want "$p" && ! want 1; then
    echo "smoke: phase $p builds on phase 1's sweep; run them together" >&2
    exit 2
  fi
done

work="$(mktemp -d)"
bin="$work/bin"
storedir="$work/store"
mkdir -p "$bin"
server_pid=""
pids=()

# Every background rfserved is tracked in pids and killed from the EXIT
# trap — TERM first, then KILL for anything that will not drain — so a
# failure in any phase can never leak a server that poisons a later
# phase's ports or outlives the test.
cleanup() {
  status=$?
  for pid in ${pids[@]+"${pids[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in ${pids[@]+"${pids[@]}"}; do
    for _ in $(seq 1 20); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.1
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  if [ "$status" -ne 0 ] && [ -n "${SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS"
    cp "$work"/*.log "$SMOKE_ARTIFACTS"/ 2>/dev/null || true
    cp "$work"/*.status "$SMOKE_ARTIFACTS"/ 2>/dev/null || true
    [ -d "$work/wal" ] && cp -r "$work/wal" "$SMOKE_ARTIFACTS/wal" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

# reap kills and forgets every tracked server; each phase that owns its
# servers calls it when done so the next phase starts clean.
reap() {
  for pid in ${pids[@]+"${pids[@]}"}; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  pids=()
  server_pid=""
}

die() { echo "smoke: FAIL: $*" >&2; exit 1; }

echo "smoke: building rfbatch and rfserved"
go build -o "$bin/rfbatch" ./cmd/rfbatch
go build -o "$bin/rfserved" ./cmd/rfserved

echo "smoke: -version must print the API schema version"
"$bin/rfbatch" -version | grep -q "schema 1" \
  || die "rfbatch -version missing schema stamp: $("$bin/rfbatch" -version)"
"$bin/rfserved" -version | grep -q "schema 1" \
  || die "rfserved -version missing schema stamp: $("$bin/rfserved" -version)"

cat > "$work/spec.json" <<'EOF'
{
  "name": "smoke",
  "instructions": 5000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}
EOF
"$bin/rfbatch" -spec "$work/spec.json" -ndjson > "$work/rfbatch.ndjson" 2> "$work/rfbatch.log"

# start_server [extra rfserved flags...]
start_server() {
  rm -f "$work/addr"
  "$bin/rfserved" -addr 127.0.0.1:0 -addr-file "$work/addr" "$@" \
    2>> "$work/rfserved.log" &
  server_pid=$!
  pids+=("$server_pid")
  for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$work/rfserved.log" >&2; die "rfserved died at startup"; }
    sleep 0.1
  done
  [ -s "$work/addr" ] || die "rfserved never wrote its address file"
  base="http://$(cat "$work/addr")"
}

stop_server() {
  kill "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

# submit <outfile-prefix>: POST the spec, stream results, fetch status.
submit() {
  local prefix="$1"
  local ack
  ack="$(curl -sfS -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
  local id results
  id="$(echo "$ack" | jq -r .id)"
  results="$(echo "$ack" | jq -r .results_url)"
  [ -n "$id" ] && [ "$id" != null ] || die "submission not acknowledged: $ack"
  # The stream blocks until the sweep finishes, then holds every row.
  curl -sfS "$base$results" > "$work/$prefix.ndjson"
  curl -sfS "$base/v1/sweeps/$id" > "$work/$prefix.status"
}

if want 1; then
  echo "smoke: starting rfserved (fresh store)"
  start_server -store "$storedir"

  echo "smoke: /v1/version must advertise schema 1"
  curl -sfS "$base/v1/version" | jq -e '.schema == 1 and (.module | length) > 0' > /dev/null \
    || die "/v1/version wrong: $(curl -sfS "$base/v1/version")"

  echo "smoke: 1/6 streamed rows must be byte-identical to rfbatch"
  submit cold
  if ! cmp -s "$work/cold.ndjson" "$work/rfbatch.ndjson"; then
    diff -u "$work/rfbatch.ndjson" "$work/cold.ndjson" >&2 || true
    die "rfserved stream differs from rfbatch output"
  fi
  rows="$(wc -l < "$work/cold.ndjson")"
  [ "$rows" -eq 6 ] || die "expected 6 result rows, got $rows"
  echo "smoke:     $rows rows identical"
fi

if want 2; then
  echo "smoke: 2/6 resubmission must be 100% cache hits"
  submit warm
  jq -e '.state == "done" and .cached == .total and .simulated == 0' \
    "$work/warm.status" > /dev/null \
    || die "resubmission was not fully cached: $(cat "$work/warm.status")"
  echo "smoke:     $(jq -r .cached "$work/warm.status")/$(jq -r .total "$work/warm.status") rows from cache"
fi

if want 3; then
  echo "smoke: 3/6 store must survive a server restart"
  stop_server
  start_server -store "$storedir"
  submit restart
  jq -e '.state == "done" and .cached == .total and .simulated == 0' \
    "$work/restart.status" > /dev/null \
    || die "restarted server re-simulated: $(cat "$work/restart.status")"
  # Rows after restart match the cold run except for cache provenance.
  if ! cmp -s <(jq -c 'del(.cached)' "$work/cold.ndjson") \
              <(jq -c 'del(.cached)' "$work/restart.ndjson"); then
    die "rows changed across server restart"
  fi
  echo "smoke:     restarted server served $(jq -r .cached "$work/restart.status") rows from the disk store"

  curl -sfS "$base/metrics" | grep -q '^rfserved_cache_hits_total' \
    || die "metrics endpoint missing cache counters"
fi
reap

if want 4; then
  echo "smoke: 4/6 coordinator + 2 workers must match single-node byte-for-byte"
  # A fresh store: every job must travel through the fleet, nothing is
  # pre-warmed.
  fleetstore="$work/fleetstore"
  rm -f "$work/coord-addr"
  "$bin/rfserved" -dispatch -lease-ms 3000 -addr 127.0.0.1:0 \
    -addr-file "$work/coord-addr" -store "$fleetstore" \
    2>> "$work/coordinator.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    [ -s "$work/coord-addr" ] && break
    sleep 0.1
  done
  [ -s "$work/coord-addr" ] || { cat "$work/coordinator.log" >&2; die "coordinator never wrote its address file"; }
  coord="http://$(cat "$work/coord-addr")"

  for i in 1 2; do
    "$bin/rfserved" -join "$coord" -worker-name "worker$i" -addr 127.0.0.1:0 \
      2>> "$work/worker$i.log" &
    pids+=("$!")
  done
  for _ in $(seq 1 100); do
    n="$(curl -sfS "$coord/v1/workers" | jq '.workers | length')" || n=0
    [ "$n" = 2 ] && break
    sleep 0.1
  done
  [ "$n" = 2 ] || die "expected 2 registered workers, got $n"
  echo "smoke:     2 workers registered"

  # Drive the fleet through rfbatch -remote: submit, stream, reassemble.
  "$bin/rfbatch" -spec "$work/spec.json" -remote "$coord" -ndjson \
    > "$work/fleet.ndjson" 2>> "$work/rfbatch-remote.log" \
    || { cat "$work/rfbatch-remote.log" >&2; die "rfbatch -remote failed"; }
  if ! cmp -s "$work/fleet.ndjson" "$work/rfbatch.ndjson"; then
    diff -u "$work/rfbatch.ndjson" "$work/fleet.ndjson" >&2 || true
    die "fleet stream differs from single-node rfbatch output"
  fi
  echo "smoke:     $(wc -l < "$work/fleet.ndjson") rows identical to single-node"

  metrics="$(curl -sfS "$coord/metrics")"
  echo "$metrics" | grep -q '^rfserved_dispatch_fallbacks_total 0$' \
    || die "coordinator fell back to local simulation: $(echo "$metrics" | grep dispatch)"
  echo "$metrics" | grep -q '^rfserved_dispatch_results_total 6$' \
    || die "fleet did not execute all 6 jobs remotely: $(echo "$metrics" | grep dispatch)"

  base="$coord"
  submit fleetwarm
  jq -e '.state == "done" and .cached == .total and .simulated == 0' \
    "$work/fleetwarm.status" > /dev/null \
    || die "fleet resubmission was not fully cached: $(cat "$work/fleetwarm.status")"
  echo "smoke:     resubmission served $(jq -r .cached "$work/fleetwarm.status")/$(jq -r .total "$work/fleetwarm.status") rows from the fleet-wide cache"
fi
reap

if want 5; then
  echo "smoke: 5/6 multi-tenant admission: keys, quotas, isolation"
  # "small" can hold at most 3 unresolved jobs — the 6-job smoke spec is
  # rejected deterministically. "big" has a rotated key pair and no limits.
  cat > "$work/tenants.json" <<'EOF'
{
  "tenants": [
    {"name": "small", "key": "smoke-key-small", "max_queued": 3},
    {"name": "big", "keys": ["smoke-key-big", "smoke-key-big-rotated"]}
  ]
}
EOF
  # A fresh store so big's stream is computed, not replayed from cache.
  start_server -store "$work/tenantstore" -tenants "$work/tenants.json"

  code="$(curl -sS -o "$work/t401.json" -w '%{http_code}' \
    -H 'X-RF-API-Key: bogus' -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
  [ "$code" = 401 ] || die "wrong key got $code, want 401: $(cat "$work/t401.json")"
  jq -e '.code == "unauthenticated"' "$work/t401.json" > /dev/null \
    || die "401 body missing code: $(cat "$work/t401.json")"
  echo "smoke:     wrong key rejected with 401 unauthenticated"

  code="$(curl -sS -o "$work/t429.json" -D "$work/t429.headers" -w '%{http_code}' \
    -H 'X-RF-API-Key: smoke-key-small' -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
  [ "$code" = 429 ] || die "over-quota tenant got $code, want 429: $(cat "$work/t429.json")"
  jq -e '.code == "over_quota" and .retry_after_ms > 0' "$work/t429.json" > /dev/null \
    || die "429 body wrong: $(cat "$work/t429.json")"
  grep -qi '^retry-after:' "$work/t429.headers" \
    || die "429 response missing Retry-After header"
  echo "smoke:     over-quota tenant rejected with 429 over_quota + Retry-After"

  # The other tenant is unaffected: its sweep runs and streams the same
  # bytes rfbatch produces (the rotated key must authenticate too).
  ack="$(curl -sfS -H 'X-RF-API-Key: smoke-key-big-rotated' \
    -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps")"
  echo "$ack" | jq -e '.tenant == "big"' > /dev/null \
    || die "ack not stamped with tenant: $ack"
  curl -sfS -H 'X-RF-API-Key: smoke-key-big' \
    "$base$(echo "$ack" | jq -r .results_url)" > "$work/tenant.ndjson"
  if ! cmp -s "$work/tenant.ndjson" "$work/rfbatch.ndjson"; then
    diff -u "$work/rfbatch.ndjson" "$work/tenant.ndjson" >&2 || true
    die "tenanted stream differs from rfbatch output"
  fi
  echo "smoke:     big's $(wc -l < "$work/tenant.ndjson") rows identical to rfbatch"

  # Result streams are owner-only: another tenant guessing the sequential
  # sweep ID must get a 403, never big's rows.
  code="$(curl -sS -o /dev/null -w '%{http_code}' -H 'X-RF-API-Key: smoke-key-small' \
    "$base$(echo "$ack" | jq -r .results_url)")"
  [ "$code" = 403 ] || die "cross-tenant stream got $code, want 403"
  echo "smoke:     cross-tenant result stream rejected with 403"

  # Keyless callers still work (they are the anonymous tenant).
  curl -sfS -X POST --data-binary @"$work/spec.json" "$base/v1/sweeps" \
    | jq -e '.tenant == "anonymous"' > /dev/null \
    || die "anonymous submission failed against tenanted server"

  metrics="$(curl -sfS "$base/metrics")"
  echo "$metrics" | grep -q '^rfserved_tenant_active_sweeps{tenant="big"}' \
    || die "metrics missing per-tenant rows: $(echo "$metrics" | grep tenant || true)"
  echo "$metrics" | grep -q '^rfserved_tenant_rejected_total{tenant="small"} 1$' \
    || die "small's rejection not counted: $(echo "$metrics" | grep tenant || true)"
  echo "smoke:     per-tenant metrics rows present"
fi
reap

if want 6; then
  echo "smoke: 6/6 coordinator SIGKILLed mid-sweep must resume from its WAL"
  # Serialized jobs big enough that the kill reliably lands mid-sweep,
  # small enough to keep the phase quick.
  cat > "$work/recovery-spec.json" <<'EOF'
{
  "name": "recovery",
  "instructions": 5000000,
  "parallelism": 1,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}
EOF
  # The uninterrupted reference stream.
  "$bin/rfbatch" -spec "$work/recovery-spec.json" -ndjson \
    > "$work/recovery-ref.ndjson" 2>> "$work/rfbatch.log"

  waldir="$work/wal"
  recstore="$work/recstore"
  rm -f "$work/rec-addr"
  "$bin/rfserved" -dispatch -lease-ms 2000 -addr 127.0.0.1:0 \
    -addr-file "$work/rec-addr" -store "$recstore" -wal-dir "$waldir" \
    2>> "$work/rec-coordinator.log" &
  coord_pid=$!
  pids+=("$coord_pid")
  for _ in $(seq 1 100); do
    [ -s "$work/rec-addr" ] && break
    sleep 0.1
  done
  [ -s "$work/rec-addr" ] || { cat "$work/rec-coordinator.log" >&2; die "recovery coordinator never wrote its address file"; }
  coordaddr="$(cat "$work/rec-addr")"
  coord="http://$coordaddr"

  # One worker that outlives the coordinator: after the kill it keeps
  # retrying, re-registers against the restarted process, and re-adopts
  # the lease it was holding when the coordinator died.
  rm -f "$work/rec-worker-addr"
  "$bin/rfserved" -join "$coord" -worker-name recworker -addr 127.0.0.1:0 \
    -addr-file "$work/rec-worker-addr" 2>> "$work/rec-worker.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    n="$(curl -sfS "$coord/v1/workers" | jq '.workers | length')" || n=0
    [ "$n" = 1 ] && break
    sleep 0.1
  done
  [ "$n" = 1 ] || die "recovery worker never registered"

  ack="$(curl -sfS -X POST --data-binary @"$work/recovery-spec.json" "$coord/v1/sweeps")"
  id="$(echo "$ack" | jq -r .id)"
  results="$(echo "$ack" | jq -r .results_url)"
  [ -n "$id" ] && [ "$id" != null ] || die "recovery submission not acknowledged: $ack"

  # Kill -9 once roughly half the rows have landed.
  completed=0
  for _ in $(seq 1 2000); do
    st="$(curl -sfS "$coord/v1/sweeps/$id" || echo '{}')"
    completed="$(echo "$st" | jq -r '.completed // 0')"
    completed="${completed:-0}"
    state="$(echo "$st" | jq -r '.state // empty')"
    [ "$state" = done ] && die "sweep finished before the kill; raise the spec's instruction budget"
    [ "$completed" -ge 3 ] && break
    sleep 0.05
  done
  [ "$completed" -ge 3 ] || die "sweep never reached 3 completed rows: $st"
  kill -9 "$coord_pid"
  wait "$coord_pid" 2>/dev/null || true
  echo "smoke:     coordinator killed at $completed/6 rows"

  # Restart on the same address (the worker's coordinator URL) and the
  # same WAL dir; the journal replays and the sweep resumes.
  "$bin/rfserved" -dispatch -lease-ms 2000 -addr "$coordaddr" \
    -store "$recstore" -wal-dir "$waldir" \
    2>> "$work/rec-coordinator.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    curl -sfS "$coord/healthz" > /dev/null 2>&1 && break
    sleep 0.1
  done
  curl -sfS "$coord/healthz" > /dev/null || { cat "$work/rec-coordinator.log" >&2; die "restarted coordinator never came up"; }

  for _ in $(seq 1 2400); do
    state="$(curl -sfS "$coord/v1/sweeps/$id" | jq -r '.state // empty')" || state=""
    [ "$state" = done ] && break
    sleep 0.05
  done
  [ "$state" = done ] || die "resumed sweep never finished: $(curl -sfS "$coord/v1/sweeps/$id")"
  curl -sfS "$coord/v1/sweeps/$id" > "$work/recovered.status"
  jq -e '.recovered == true' "$work/recovered.status" > /dev/null \
    || die "resumed status missing the recovered marker: $(cat "$work/recovered.status")"

  curl -sfS "$coord$results" > "$work/recovered.ndjson"
  if ! cmp -s "$work/recovered.ndjson" "$work/recovery-ref.ndjson"; then
    diff -u "$work/recovery-ref.ndjson" "$work/recovered.ndjson" >&2 || true
    die "resumed stream differs from the uninterrupted reference"
  fi
  echo "smoke:     resumed stream byte-identical ($(wc -l < "$work/recovered.ndjson") rows)"

  # Zero duplicate simulation: across both coordinator lives, the worker
  # executed each of the 6 jobs exactly once (its own cache absorbs any
  # redundant re-lease, so a duplicated *simulation* is what this counts).
  worker="http://$(cat "$work/rec-worker-addr")"
  sims="$(curl -sfS "$worker/metrics" | grep '^rfserved_simulations_started_total ' | awk '{print $2}')"
  [ "$sims" = 6 ] || die "worker simulated $sims jobs across the crash, want exactly 6"
  echo "smoke:     worker simulated 6/6 jobs exactly once across the crash"

  # The resumed journal was replayed, and resubmitting the spec is 100%
  # warm cache hits (nothing was lost, nothing re-simulated).
  curl -sfS "$coord/metrics" | grep -q '^rfserved_wal_replayed_records{journal="server"} [1-9]' \
    || die "restarted coordinator reports no replayed journal records"
  base="$coord"
  cp "$work/recovery-spec.json" "$work/spec.json"
  submit recwarm
  jq -e '.state == "done" and .cached == .total and .simulated == 0' \
    "$work/recwarm.status" > /dev/null \
    || die "post-recovery resubmission was not fully cached: $(cat "$work/recwarm.status")"
  echo "smoke:     post-recovery resubmission fully cached"
fi
reap

if want 7; then
  echo "smoke: 7/7 sharded fleet store: peer-tier reads + hedged dead-peer fallback"
  # Phase 6 repoints spec.json at the recovery spec; phase 7 is
  # self-contained, so restore the 6-job smoke spec first.
  cat > "$work/spec.json" <<'EOF'
{
  "name": "smoke",
  "instructions": 5000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}
EOF

  # Coordinator C1 has NO local store: results live only in the workers'
  # stores, so every later cache hit must travel the peer tier.
  rm -f "$work/p7-coord-addr"
  "$bin/rfserved" -dispatch -lease-ms 3000 -store-shards 16 \
    -addr 127.0.0.1:0 -addr-file "$work/p7-coord-addr" \
    2>> "$work/p7-coordinator.log" &
  p7_coord_pid=$!
  pids+=("$p7_coord_pid")
  for _ in $(seq 1 100); do
    [ -s "$work/p7-coord-addr" ] && break
    sleep 0.1
  done
  [ -s "$work/p7-coord-addr" ] || { cat "$work/p7-coordinator.log" >&2; die "phase-7 coordinator never wrote its address file"; }
  coordaddr="$(cat "$work/p7-coord-addr")"
  coord="http://$coordaddr"

  p7_worker_pids=()
  for i in 1 2; do
    rm -f "$work/p7-worker$i-addr"
    "$bin/rfserved" -join "$coord" -worker-name "peerworker$i" \
      -store "$work/p7-store$i" -addr 127.0.0.1:0 \
      -addr-file "$work/p7-worker$i-addr" 2>> "$work/p7-worker$i.log" &
    p7_worker_pids+=("$!")
    pids+=("$!")
  done
  for _ in $(seq 1 100); do
    n="$(curl -sfS "$coord/v1/workers" | jq '.workers | length')" || n=0
    [ "$n" = 2 ] && break
    sleep 0.1
  done
  [ "$n" = 2 ] || die "expected 2 registered phase-7 workers, got $n"

  echo "smoke:     cold sweep through the storeless coordinator"
  "$bin/rfbatch" -spec "$work/spec.json" -remote "$coord" -ndjson \
    > "$work/p7-cold.ndjson" 2>> "$work/p7-rfbatch.log" \
    || { cat "$work/p7-rfbatch.log" >&2; die "phase-7 rfbatch -remote failed"; }
  if ! cmp -s "$work/p7-cold.ndjson" "$work/rfbatch.ndjson"; then
    diff -u "$work/rfbatch.ndjson" "$work/p7-cold.ndjson" >&2 || true
    die "phase-7 cold fleet stream differs from single-node rfbatch output"
  fi
  curl -sfS "$coord/metrics" | grep -q '^rfserved_dispatch_results_total 6$' \
    || die "phase-7 fleet did not execute all 6 jobs remotely"

  # Kill the coordinator (only it — the workers keep their stores) and
  # start a fresh one on the same address. Its memory cache and (absent)
  # local store know nothing: the resubmitted sweep can only be served
  # by reading the workers' stores through the peer tier.
  kill "$p7_coord_pid"
  wait "$p7_coord_pid" 2>/dev/null || true
  "$bin/rfserved" -dispatch -lease-ms 3000 -store-shards 16 -addr "$coordaddr" \
    2>> "$work/p7-coordinator.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    curl -sfS "$coord/healthz" > /dev/null 2>&1 && break
    sleep 0.1
  done
  curl -sfS "$coord/healthz" > /dev/null || { cat "$work/p7-coordinator.log" >&2; die "phase-7 restarted coordinator never came up"; }

  # Wait until every worker that actually holds objects has re-registered
  # and advertised its shard inventory to the new coordinator (a worker
  # the scheduler happened to starve has nothing to advertise).
  ready=0
  for _ in $(seq 1 300); do
    ready=1
    wjson="$(curl -sfS "$coord/v1/workers" 2>/dev/null)" || wjson=""
    [ -n "$wjson" ] || { ready=0; sleep 0.1; continue; }
    [ "$(echo "$wjson" | jq '.workers | length')" = 2 ] || { ready=0; sleep 0.1; continue; }
    for i in 1 2; do
      waddr="http://$(cat "$work/p7-worker$i-addr")"
      objs="$(curl -sfS "$waddr/metrics" 2>/dev/null | grep '^rfserved_store_objects ' | awk '{print $2}')" || objs=0
      if [ "${objs:-0}" -gt 0 ]; then
        adv="$(echo "$wjson" | jq -r --arg n "peerworker$i" \
          '[.workers[] | select(.name == $n)][0].store_shards // 0')"
        [ "${adv:-0}" -ge 1 ] || ready=0
      fi
    done
    [ "$ready" = 1 ] && break
    sleep 0.1
  done
  [ "$ready" = 1 ] || die "workers never advertised their store inventory to the new coordinator"
  echo "smoke:     fresh coordinator sees the fleet inventory"

  base="$coord"
  submit p7-peer
  jq -e '.state == "done" and .cached == .total and .simulated == 0' \
    "$work/p7-peer.status" > /dev/null \
    || die "peer-tier resubmission was not fully cached: $(cat "$work/p7-peer.status")"
  if ! cmp -s <(jq -c 'del(.cached)' "$work/p7-cold.ndjson") \
              <(jq -c 'del(.cached)' "$work/p7-peer.ndjson"); then
    die "peer-tier rows differ from the cold run"
  fi
  curl -sfS "$coord/metrics" | grep -q '^rfserved_store_tier_hits{tier="peer"} 6$' \
    || die "coordinator did not serve all 6 rows from the peer tier: $(curl -sfS "$coord/metrics" | grep store_tier || true)"
  echo "smoke:     resubmission served 6/6 rows from worker stores (0 simulations)"

  # Dead-peer fallback: a brand-new node lists the soon-to-die worker 2
  # FIRST in its remote tiers, then worker 1. Reads hit the dead URL,
  # fail over, and the sweep still completes byte-identically.
  w1addr="$(cat "$work/p7-worker1-addr")"
  w2addr="$(cat "$work/p7-worker2-addr")"
  kill "${p7_worker_pids[1]}"
  wait "${p7_worker_pids[1]}" 2>/dev/null || true
  echo "smoke:     worker 2 killed; new node must hedge around http://$w2addr"
  start_server -store "$work/p7-nodeb-store" \
    -store-remote "http://$w2addr,http://$w1addr"
  submit p7-hedged
  jq -e '.state == "done" and (.cached + .simulated) == .total' \
    "$work/p7-hedged.status" > /dev/null \
    || die "hedged-fallback sweep did not complete: $(cat "$work/p7-hedged.status")"
  if ! cmp -s <(jq -c 'del(.cached)' "$work/p7-cold.ndjson") \
              <(jq -c 'del(.cached)' "$work/p7-hedged.ndjson"); then
    die "hedged-fallback rows differ from the cold run"
  fi
  errors="$(curl -sfS "$base/metrics" | grep '^rfserved_store_remote_errors ' | awk '{print $2}')"
  [ "${errors:-0}" -ge 1 ] || die "dead remote tier produced no counted errors"
  echo "smoke:     sweep completed around the dead peer ($(jq -r .cached "$work/p7-hedged.status") remote hits, $(jq -r .simulated "$work/p7-hedged.status") resimulated, $errors tier errors)"
fi
reap

if want 8; then
  echo "smoke: 8/8 warehouse: server-side queries match local aggregation, survive dir loss"
  # Self-contained: earlier phases may have repointed spec.json.
  cat > "$work/spec.json" <<'EOF'
{
  "name": "smoke",
  "instructions": 5000,
  "benchmarks": ["compress", "swim"],
  "architectures": [
    {"kind": "1cycle"},
    {"kind": "rfcache", "caching": ["nonbypass", "ready"]}
  ]
}
EOF

  whdir="$work/warehouse"
  p8waldir="$work/p8-wal"
  p8store="$work/p8-store"
  rm -f "$work/p8-coord-addr"
  "$bin/rfserved" -dispatch -lease-ms 3000 -addr 127.0.0.1:0 \
    -addr-file "$work/p8-coord-addr" -store "$p8store" -wal-dir "$p8waldir" \
    -warehouse-dir "$whdir" 2>> "$work/p8-coordinator.log" &
  p8_coord_pid=$!
  pids+=("$p8_coord_pid")
  for _ in $(seq 1 100); do
    [ -s "$work/p8-coord-addr" ] && break
    sleep 0.1
  done
  [ -s "$work/p8-coord-addr" ] || { cat "$work/p8-coordinator.log" >&2; die "phase-8 coordinator never wrote its address file"; }
  coordaddr="$(cat "$work/p8-coord-addr")"
  coord="http://$coordaddr"

  "$bin/rfserved" -join "$coord" -worker-name whworker -addr 127.0.0.1:0 \
    2>> "$work/p8-worker.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    n="$(curl -sfS "$coord/v1/workers" | jq '.workers | length')" || n=0
    [ "$n" = 1 ] && break
    sleep 0.1
  done
  [ "$n" = 1 ] || die "phase-8 worker never registered"

  # Run the sweep through the fleet and keep the streamed rows: they are
  # the client-side ground truth the query answers are checked against.
  ack="$(curl -sfS -X POST --data-binary @"$work/spec.json" "$coord/v1/sweeps")"
  id="$(echo "$ack" | jq -r .id)"
  results="$(echo "$ack" | jq -r .results_url)"
  [ -n "$id" ] && [ "$id" != null ] || die "phase-8 submission not acknowledged: $ack"
  curl -sfS "$coord$results" > "$work/p8-rows.ndjson"
  cmp -s "$work/p8-rows.ndjson" "$work/rfbatch.ndjson" \
    || die "phase-8 fleet stream differs from rfbatch output"

  cat > "$work/q-series.json" <<'EOF'
{"schema": 1, "op": "series"}
EOF
  cat > "$work/q-agg.json" <<'EOF'
{"schema": 1, "op": "aggregate", "group_by": ["family", "suite"],
 "metrics": [{"op": "mean", "metric": "ipc"}, {"op": "max", "metric": "cycles"}]}
EOF
  cat > "$work/q-rows.json" <<'EOF'
{"schema": 1, "op": "rows", "limit": 2}
EOF

  # The acceptance contract: for every op, the coordinator's answer is
  # byte-identical to re-aggregating the streamed rows locally — zero
  # rows travel for the server-side answer (q-rows paginates at limit 2,
  # so the cursor walk is covered too).
  for q in series agg rows; do
    "$bin/rfbatch" -query "$work/q-$q.json" -remote "$coord" -sweep "$id" \
      > "$work/p8-$q-remote.json" 2>> "$work/p8-rfbatch.log" \
      || { cat "$work/p8-rfbatch.log" >&2; die "remote $q query failed"; }
    "$bin/rfbatch" -query "$work/q-$q.json" -from "$work/p8-rows.ndjson" \
      -spec "$work/spec.json" -sweep "$id" \
      > "$work/p8-$q-local.json" 2>> "$work/p8-rfbatch.log" \
      || { cat "$work/p8-rfbatch.log" >&2; die "local $q query failed"; }
    if ! cmp -s "$work/p8-$q-remote.json" "$work/p8-$q-local.json"; then
      diff -u "$work/p8-$q-local.json" "$work/p8-$q-remote.json" >&2 || true
      die "$q query: server-side answer differs from local aggregation"
    fi
  done
  echo "smoke:     series/aggregate/rows answers byte-identical to local aggregation"

  # The figure render: -table turns the series answer into the Figure 6
  # benchmark x architecture IPC grid, identically on both paths.
  "$bin/rfbatch" -query "$work/q-series.json" -remote "$coord" -sweep "$id" -table \
    > "$work/p8-fig6-remote.txt" 2>> "$work/p8-rfbatch.log"
  "$bin/rfbatch" -query "$work/q-series.json" -from "$work/p8-rows.ndjson" \
    -spec "$work/spec.json" -sweep "$id" -table \
    > "$work/p8-fig6-local.txt" 2>> "$work/p8-rfbatch.log"
  cmp -s "$work/p8-fig6-remote.txt" "$work/p8-fig6-local.txt" \
    || die "Figure 6 table differs between coordinator and local render"
  grep -q 'compress' "$work/p8-fig6-remote.txt" && grep -q 'swim' "$work/p8-fig6-remote.txt" \
    || die "Figure 6 table missing benchmark rows: $(cat "$work/p8-fig6-remote.txt")"
  echo "smoke:     Figure 6 table renders identically from the coordinator"

  # GET with the document url-encoded in ?q= is the same evaluator.
  curl -sfS -G --data-urlencode "q@$work/q-series.json" "$coord/v1/query" \
    > "$work/p8-get.json"
  curl -sfS -X POST --data-binary @"$work/q-series.json" "$coord/v1/query" \
    > "$work/p8-post.json"
  cmp -s "$work/p8-get.json" "$work/p8-post.json" \
    || die "GET and POST /v1/query answers differ"

  metrics="$(curl -sfS "$coord/metrics")"
  echo "$metrics" | grep -q '^rfserved_warehouse_segments 1$' \
    || die "warehouse metrics missing segment count: $(echo "$metrics" | grep warehouse || true)"
  echo "$metrics" | grep -q '^rfserved_warehouse_queries_total [1-9]' \
    || die "warehouse query counter never moved: $(echo "$metrics" | grep warehouse || true)"

  # Lose the warehouse directory entirely; the restarted coordinator
  # rebuilds the segment from the content-addressed store and answers
  # every query byte-identically, without one simulation.
  kill "$p8_coord_pid"
  wait "$p8_coord_pid" 2>/dev/null || true
  rm -rf "$whdir"
  "$bin/rfserved" -dispatch -lease-ms 3000 -addr "$coordaddr" \
    -store "$p8store" -wal-dir "$p8waldir" -warehouse-dir "$whdir" \
    2>> "$work/p8-coordinator.log" &
  pids+=("$!")
  for _ in $(seq 1 100); do
    curl -sfS "$coord/healthz" > /dev/null 2>&1 && break
    sleep 0.1
  done
  curl -sfS "$coord/healthz" > /dev/null || { cat "$work/p8-coordinator.log" >&2; die "phase-8 restarted coordinator never came up"; }
  for _ in $(seq 1 100); do
    segs="$(curl -sfS "$coord/metrics" | grep '^rfserved_warehouse_segments ' | awk '{print $2}')" || segs=0
    [ "${segs:-0}" = 1 ] && break
    sleep 0.1
  done
  [ "${segs:-0}" = 1 ] || die "restarted coordinator never rebuilt the warehouse segment"

  for q in series agg rows; do
    "$bin/rfbatch" -query "$work/q-$q.json" -remote "$coord" -sweep "$id" \
      > "$work/p8-$q-rebuilt.json" 2>> "$work/p8-rfbatch.log" \
      || { cat "$work/p8-rfbatch.log" >&2; die "post-rebuild $q query failed"; }
    cmp -s "$work/p8-$q-rebuilt.json" "$work/p8-$q-remote.json" \
      || die "$q query differs after warehouse rebuild"
  done
  sims="$(curl -sfS "$coord/metrics" | grep '^rfserved_simulations_started_total ' | awk '{print $2}')"
  [ "${sims:-0}" = 0 ] || die "warehouse rebuild triggered $sims local simulations"
  echo "smoke:     warehouse rebuilt from the store; all answers byte-identical, 0 simulations"
fi
reap

echo "smoke: PASS"
